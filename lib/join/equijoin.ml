let exact_size r s =
  let vr = Data.Dataset.sorted_values r and vs = Data.Dataset.sorted_values s in
  let nr = Array.length vr and ns = Array.length vs in
  let total = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < nr && !j < ns do
    let a = vr.(!i) and b = vs.(!j) in
    if a < b then incr i
    else if a > b then incr j
    else begin
      (* Count the runs of the shared value on both sides. *)
      let i0 = !i and j0 = !j in
      while !i < nr && vr.(!i) = a do
        incr i
      done;
      while !j < ns && vs.(!j) = a do
        incr j
      done;
      total := !total + ((!i - i0) * (!j - j0))
    end
  done;
  !total

let from_densities ?(grid = 2048) ~domain:(lo, hi) f_r f_s ~n_r ~n_s =
  if grid < 2 then invalid_arg "Equijoin.from_densities: grid must be >= 2";
  if n_r <= 0 || n_s <= 0 then
    invalid_arg "Equijoin.from_densities: relation sizes must be positive";
  if lo >= hi then invalid_arg "Equijoin.from_densities: empty domain";
  let xs =
    Array.init grid (fun i -> lo +. (float_of_int i /. float_of_int (grid - 1) *. (hi -. lo)))
  in
  let ys = Array.map (fun x -> f_r x *. f_s x) xs in
  let integral = Stats.Integrate.integrate_grid xs ys in
  float_of_int n_r *. float_of_int n_s *. integral

let estimate ?grid ~domain est_r est_s ~n_r ~n_s =
  if Selest.Estimator.has_density est_r && Selest.Estimator.has_density est_s then begin
    let f est x = Option.value ~default:0.0 (Selest.Estimator.density est x) in
    Some (from_densities ?grid ~domain (f est_r) (f est_s) ~n_r ~n_s)
  end
  else None

let exact_range_restricted_size r s ~lo ~hi =
  let vr = Data.Dataset.sorted_values r and vs = Data.Dataset.sorted_values s in
  let nr = Array.length vr and ns = Array.length vs in
  (* Clamp in float space to the array's value range before the int
     conversion: [int_of_float] is unspecified outside [min_int, max_int],
     so an unbounded range like [hi = infinity] must never reach it (the
     Kernels.Lut.cdf bug class).  NaN bounds fail the [<=] guards and
     fall out as an empty range. *)
  let v_min = float_of_int vr.(0) and v_max = float_of_int vr.(nr - 1) in
  let flo = Float.ceil lo and fhi = Float.floor hi in
  if not (flo <= fhi && flo <= v_max && fhi >= v_min) then 0
  else begin
    let ilo = int_of_float (Float.max v_min flo)
    and ihi = int_of_float (Float.min v_max fhi) in
    let total = ref 0 in
    let i = ref (Stats.Array_util.int_lower_bound vr ilo) in
    let j = ref 0 in
    while !i < nr && vr.(!i) <= ihi && !j < ns do
      let a = vr.(!i) and b = vs.(!j) in
      if a < b then incr i
      else if a > b then incr j
      else begin
        let i0 = !i and j0 = !j in
        while !i < nr && vr.(!i) = a do
          incr i
        done;
        while !j < ns && vs.(!j) = a do
          incr j
        done;
        total := !total + ((!i - i0) * (!j - j0))
      end
    done;
    !total
  end

(* [None] means "these estimators cannot answer" and nothing else: the
   capability check comes first, so an empty clamped range is [Some 0.0]
   exactly when a non-empty one would have produced an estimate. *)
let range_restricted ?(grid = 2048) ~domain:(dlo, dhi) est_r est_s ~n_r ~n_s ~lo ~hi =
  if not (Selest.Estimator.has_density est_r && Selest.Estimator.has_density est_s) then
    None
  else begin
    let lo = Float.max lo dlo and hi = Float.min hi dhi in
    if lo >= hi then Some 0.0
    else begin
      let f est x = Option.value ~default:0.0 (Selest.Estimator.density est x) in
      Some (from_densities ~grid ~domain:(lo, hi) (f est_r) (f est_s) ~n_r ~n_s)
    end
  end

let sample_join sample_r sample_s ~n_r ~n_s =
  let mr = Array.length sample_r and ms = Array.length sample_s in
  if mr = 0 || ms = 0 then invalid_arg "Equijoin.sample_join: empty sample";
  if n_r <= 0 || n_s <= 0 then invalid_arg "Equijoin.sample_join: relation sizes must be positive";
  let vr = Array.copy sample_r and vs = Array.copy sample_s in
  Array.sort Float.compare vr;
  Array.sort Float.compare vs;
  let matches = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < mr && !j < ms do
    if vr.(!i) < vs.(!j) then incr i
    else if vr.(!i) > vs.(!j) then incr j
    else begin
      let v = vr.(!i) in
      let i0 = !i and j0 = !j in
      while !i < mr && vr.(!i) = v do
        incr i
      done;
      while !j < ms && vs.(!j) = v do
        incr j
      done;
      matches := !matches + ((!i - i0) * (!j - j0))
    end
  done;
  float_of_int !matches *. float_of_int n_r *. float_of_int n_s
  /. (float_of_int mr *. float_of_int ms)
