(** Inequality-join size estimation via per-relation equi-depth histograms.

    Extends {!Equijoin} from [R.A = S.B] to [R.A < S.B] and [R.A <= S.B],
    following the histogram-pair algorithm of "Selectivity Estimation of
    Inequality Joins In Databases": build one equi-depth histogram per
    relation from a sample, then sweep the bucket-pair grid accumulating

    {v |R JOIN_< S| ~ N_R * N_S * sum_{i,k} m_R(i) m_S(k) P(x < y) v}

    with [P(x < y)] in closed form for uniform-within-bucket values.  The
    summaries themselves live in {!Selest.Stored.join} (serialized,
    catalog-cached, served over the wire); this module adds the exact
    merge-count oracle and thin build/estimate wrappers, so a served join
    estimate is bit-identical to the direct library call by construction. *)

val exact_inequality_size :
  Data.Dataset.t -> Data.Dataset.t -> pred:Selest.Stored.join_pred -> int
(** Exact size of [R JOIN_pred S] over the integer attribute.  [Join_eq]
    delegates to {!Equijoin.exact_size}; [Join_lt] / [Join_le] sweep both
    sorted value arrays with one monotone pointer, counting for each S
    value the R values (strictly) below it — O(|R| + |S|) time even though
    the join output itself is quadratic. *)

val summarize :
  ?buckets:int ->
  domain:float * float ->
  n_r:int ->
  n_s:int ->
  float array ->
  float array ->
  Selest.Stored.join
(** [summarize ~domain ~n_r ~n_s sample_r sample_s] builds the servable
    join summary: one equi-depth histogram per relation (default 64
    buckets) plus the sorted, domain-clamped samples retained for
    adaptive rebuilds.  Thin wrapper over
    {!Selest.Stored.join_of_samples}; see it for validation rules.
    @raise Invalid_argument on empty samples, non-positive sizes or
    buckets, an empty domain, or non-finite sample values. *)

val estimate : Selest.Stored.join -> pred:Selest.Stored.join_pred -> float
(** Estimated join size under [pred].  [Join_eq] is the density-product
    formula on the bucket-pair grid (the {!Equijoin} model); [Join_lt] is
    the histogram-pair sweep; [Join_le] is their sum, matching the
    oracle's [le = lt + eq] decomposition on integer data.  Alias of
    {!Selest.Stored.join_estimate} — the server calls that directly, which
    is what makes served answers bit-identical to this function. *)

val estimate_of_samples :
  ?buckets:int ->
  domain:float * float ->
  n_r:int ->
  n_s:int ->
  float array ->
  float array ->
  pred:Selest.Stored.join_pred ->
  float
(** {!summarize} followed by {!estimate}: the one-shot offline path. *)
