let exact_inequality_size r s ~pred =
  match (pred : Selest.Stored.join_pred) with
  | Join_eq -> Equijoin.exact_size r s
  | Join_lt | Join_le ->
    let vr = Data.Dataset.sorted_values r and vs = Data.Dataset.sorted_values s in
    let nr = Array.length vr in
    let strict = pred = Selest.Stored.Join_lt in
    (* Both arrays sorted ascending: the count of R values below each
       successive S value is non-decreasing, so one pointer sweeps R
       exactly once — O(|R| + |S|) for the quadratic-output predicate. *)
    let total = ref 0 and i = ref 0 in
    Array.iter
      (fun v ->
        if strict then
          while !i < nr && vr.(!i) < v do
            incr i
          done
        else
          while !i < nr && vr.(!i) <= v do
            incr i
          done;
        total := !total + !i)
      vs;
    !total

let summarize ?(buckets = 64) ~domain ~n_r ~n_s sample_r sample_s =
  Selest.Stored.join_of_samples ~domain ~buckets ~n_r ~n_s sample_r sample_s

let estimate = Selest.Stored.join_estimate

let estimate_of_samples ?buckets ~domain ~n_r ~n_s sample_r sample_s ~pred =
  estimate (summarize ?buckets ~domain ~n_r ~n_s sample_r sample_s) ~pred
