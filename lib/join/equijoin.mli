(** Equi-join size estimation from per-relation density estimates.

    The paper's opening motivation is estimating the sizes of intermediate
    results for plan costing, citing System R [12] and Ioannidis'
    worst-case join error propagation [2].  For an equi-join
    [R.A = S.B] over a shared integer domain the exact size is

    {v |R JOIN S| = sum_v count_R(v) * count_S(v) v}

    and with per-value probabilities approximated by densities (each value
    occupying a unit cell), the estimate becomes

    {v N_R * N_S * int f_R(x) f_S(x) dx v}

    which any two estimators exposing densities can answer.  This module
    provides the exact oracle, the density-product estimator, and the
    classic sample-join estimator, so the 1-D selectivity machinery extends
    to the join cardinalities optimizers actually need. *)

val exact_size : Data.Dataset.t -> Data.Dataset.t -> int
(** Exact equi-join result size (sum over shared values of the count
    products), by merging the sorted value arrays. *)

val from_densities :
  ?grid:int ->
  domain:float * float ->
  (float -> float) ->
  (float -> float) ->
  n_r:int ->
  n_s:int ->
  float
(** [from_densities ~domain f_r f_s ~n_r ~n_s] integrates the density
    product on a [grid]-point grid (default 2048) and scales by both
    relation sizes.
    @raise Invalid_argument if [grid < 2], sizes are non-positive or the
    domain is empty. *)

val estimate :
  ?grid:int ->
  domain:float * float ->
  Selest.Estimator.t ->
  Selest.Estimator.t ->
  n_r:int ->
  n_s:int ->
  float option
(** {!from_densities} over two fitted estimators (pass the attribute domain
    they were built with).  [None] if and only if either estimator lacks a
    density ([Selest.Estimator.has_density] — pure sampling); with two
    density-backed estimators the result is always [Some]. *)

val exact_range_restricted_size :
  Data.Dataset.t -> Data.Dataset.t -> lo:float -> hi:float -> int
(** Exact size of [sigma_(lo <= A <= hi)(R) JOIN S] — a selection pushed
    below the join, the plan shape whose cardinality errors compound
    (Ioannidis' error-propagation setting [2]).  Total for any float
    bounds: [±infinity] act as unbounded ends, NaN as an empty range (the
    bounds are clamped to the value range in float space before any int
    conversion, so nothing reaches [int_of_float]'s unspecified cases). *)

val range_restricted :
  ?grid:int ->
  domain:float * float ->
  Selest.Estimator.t ->
  Selest.Estimator.t ->
  n_r:int ->
  n_s:int ->
  lo:float ->
  hi:float ->
  float option
(** Density-product estimate of the range-restricted join
    [N_R N_S int_lo^hi f_R f_S].  The option mirrors {!estimate}'s
    contract exactly: [None] if and only if either estimator lacks a
    density ([Selest.Estimator.has_density]), regardless of the range —
    a range that clamps to empty is [Some 0.0] precisely when a
    non-empty one would have produced an estimate. *)

val sample_join :
  float array -> float array -> n_r:int -> n_s:int -> float
(** The sampling estimator: join the two samples exactly (on equal float
    values) and scale by [(N_R N_S) / (n_r n_s)] — unbiased but useless
    when values rarely collide, which is precisely the large-domain regime
    of the paper.  @raise Invalid_argument on empty samples or non-positive
    sizes. *)
