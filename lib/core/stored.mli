(** Serializable statistics summaries.

    A production optimizer does not keep samples or fitted estimators in
    memory between sessions; ANALYZE reduces them to a compact summary in
    the system catalog.  This module is that reduction: any fitted
    {!Estimator.t} is probed once per cell of an equal-width grid, the
    per-cell masses are stored, and the summary answers range queries
    under the uniform-within-cell assumption — with a textual
    serialization for persistence.

    The cell masses are exact cell selectivities of the source estimator
    (probed via {!Estimator.selectivity}, not by sampling the density), so
    a stored kernel summary at [cells] resolution is exactly the kernel
    estimator convolved onto that grid. *)

type t

val of_estimator : ?cells:int -> domain:float * float -> Estimator.t -> t
(** [of_estimator ~domain est] probes [cells] (default 256) equal-width
    cells.  @raise Invalid_argument if [cells <= 0] or the domain is
    empty. *)

val of_fn :
  ?cells:int -> domain:float * float -> (a:float -> b:float -> float) -> t
(** [of_fn ~domain f] is {!of_estimator} generalized to any range
    selectivity function: cell [i] stores [max 0 (f ~a:cell_lo ~b:cell_hi)].
    The adaptive serving path uses this to bake an ST-histogram refinement
    ([Feedback.Adaptive.selectivity]) into a swappable summary.
    @raise Invalid_argument if [cells <= 0] or the domain is empty. *)

val of_sample :
  ?cells:int -> ?spec:Estimator.spec -> domain:float * float -> float array -> t
(** Build the estimator from the sample (spec defaults to
    {!Estimator.kernel_defaults}) and reduce it. *)

val cells : t -> int
(** Grid resolution of this summary. *)

val domain : t -> float * float
(** Estimation domain the cells partition. *)

val selectivity : t -> a:float -> b:float -> float
(** Piecewise-constant range selectivity, clamped to [[0, 1]]. *)

val selectivity_into :
  t -> pos:int -> len:int -> a:float array -> b:float array -> out:float array -> unit
(** [selectivity_into t ~pos ~len ~a ~b ~out] writes {!selectivity} of
    [Q(a.(i), b.(i))] to [out.(i)] for [pos <= i < pos + len],
    bit-identically to the scalar probe and without allocating — the
    serving engine evaluates each same-summary run of a merged batch
    through this in place.  [len = 0] touches nothing.
    @raise Invalid_argument on a negative range or arrays shorter than
    [pos + len]. *)

val to_string : t -> string
(** One-line-per-field textual form, safe to store in a catalog column. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first malformed field. *)
