(** Serializable statistics summaries.

    A production optimizer does not keep samples or fitted estimators in
    memory between sessions; ANALYZE reduces them to a compact summary in
    the system catalog.  This module is that reduction: any fitted
    {!Estimator.t} is probed once per cell of an equal-width grid, the
    per-cell masses are stored, and the summary answers range queries
    under the uniform-within-cell assumption — with a textual
    serialization for persistence.

    The cell masses are exact cell selectivities of the source estimator
    (probed via {!Estimator.selectivity}, not by sampling the density), so
    a stored kernel summary at [cells] resolution is exactly the kernel
    estimator convolved onto that grid. *)

type t

val of_estimator : ?cells:int -> domain:float * float -> Estimator.t -> t
(** [of_estimator ~domain est] probes [cells] (default 256) equal-width
    cells.  @raise Invalid_argument if [cells <= 0] or the domain is
    empty. *)

val of_fn :
  ?cells:int -> domain:float * float -> (a:float -> b:float -> float) -> t
(** [of_fn ~domain f] is {!of_estimator} generalized to any range
    selectivity function: cell [i] stores [max 0 (f ~a:cell_lo ~b:cell_hi)].
    The adaptive serving path uses this to bake an ST-histogram refinement
    ([Feedback.Adaptive.selectivity]) into a swappable summary.
    @raise Invalid_argument if [cells <= 0] or the domain is empty. *)

val of_sample :
  ?cells:int -> ?spec:Estimator.spec -> domain:float * float -> float array -> t
(** Build the estimator from the sample (spec defaults to
    {!Estimator.kernel_defaults}) and reduce it. *)

val cells : t -> int
(** Grid resolution of this summary. *)

val domain : t -> float * float
(** Estimation domain the cells partition. *)

val selectivity : t -> a:float -> b:float -> float
(** Piecewise-constant range selectivity, clamped to [[0, 1]]. *)

val selectivity_into :
  t -> pos:int -> len:int -> a:float array -> b:float array -> out:float array -> unit
(** [selectivity_into t ~pos ~len ~a ~b ~out] writes {!selectivity} of
    [Q(a.(i), b.(i))] to [out.(i)] for [pos <= i < pos + len],
    bit-identically to the scalar probe and without allocating — the
    serving engine evaluates each same-summary run of a merged batch
    through this in place.  [len = 0] touches nothing.
    @raise Invalid_argument on a negative range or arrays shorter than
    [pos + len]. *)

val to_string : t -> string
(** One-line-per-field textual form, safe to store in a catalog column. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] describes the first malformed field. *)

(** {1 Rectangle (2-D grid) summaries}

    The 2-D analog of {!t}: an equal-width grid of cell masses over a
    product domain, answering rectangle queries under the
    uniform-within-cell assumption.  [Multidim.Hist2d] delegates its
    arithmetic here, so a served rectangle estimate is bit-identical to
    the direct library call. *)

type rect

val canonical_rect :
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  (float * float * float * float) option
(** Closed-rectangle-on-the-integer-grid canonicalization, the shared
    query semantics of every 2-D estimator in this codebase: the rectangle
    means the integer points it contains, and the continuous region
    actually evaluated is the union of their unit cells —
    [(ceil x_lo - 0.5, floor x_hi + 0.5)] per axis.  Queries already
    phrased on half-integer cell edges map to themselves; a degenerate
    [[a, a]] query becomes the unit cell around [a], agreeing with the
    inclusive exact count of [Multidim.Dataset2d].  [None] when no integer
    point lies inside (inverted, empty or NaN bounds). *)

val rect_of_points :
  domain_x:float * float ->
  domain_y:float * float ->
  bins_x:int ->
  bins_y:int ->
  (float * float) array ->
  rect
(** Build the grid by binning sample points (cell indices clamped in
    float space, so out-of-domain and infinite coordinates land in edge
    cells).  @raise Invalid_argument on an empty sample, empty domains or
    non-positive bin counts. *)

val rect_of_fn :
  domain_x:float * float ->
  domain_y:float * float ->
  bins_x:int ->
  bins_y:int ->
  (x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float) ->
  rect
(** Probe any 2-D selectivity function once per cell (the 2-D {!of_fn}):
    cell [(i, j)] stores [max 0 (f cell_rect)].  Use to reduce a
    product-kernel or independence estimator onto a servable grid.
    @raise Invalid_argument on empty domains or non-positive bins. *)

val rect_bins : rect -> int * int
(** Grid resolution [(bins_x, bins_y)]. *)

val rect_domains : rect -> (float * float) * (float * float)
(** The product domain [(domain_x, domain_y)] the grid partitions. *)

val rect_selectivity :
  rect -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Selectivity of the canonicalized ({!canonical_rect}) rectangle:
    per-cell mass times overlapped area fraction, clamped to [[0, 1]];
    [0] when the rectangle contains no integer point. *)

val rect_density : rect -> float -> float -> float
(** Cell mass over [total * cell area]; 0 outside the grid. *)

val rect_to_string : rect -> string
(** Textual serialization (["selest-stored-rect v1"] header). *)

val rect_of_string : string -> (rect, string) result
(** Inverse of {!rect_to_string}; total on malformed input. *)

val rect_spec_of_string : string -> (int * int, string) result
(** Parse the compact rect spec syntax the catalog stores:
    ["hist2d"] (32x32 default), ["hist2d:64"], ["hist2d:64x32"].
    Returns the bin counts [(bins_x, bins_y)]. *)

(** {1 Join summaries}

    Per-relation equi-depth histograms plus the retained build samples,
    answering equi- and inequality-join size estimates.  The arithmetic
    (density product for [eq], histogram-pair sweep for [lt]/[le]) lives
    here so [Join.Ineqjoin] and the serving stack share one code path. *)

type join_pred = Join_eq | Join_lt | Join_le

val join_pred_to_string : join_pred -> string
(** ["eq"], ["lt"] or ["le"]. *)

val join_pred_of_string : string -> (join_pred, string) result
(** Inverse of {!join_pred_to_string}; [Error] on anything else. *)

type join

val join_of_samples :
  domain:float * float ->
  buckets:int ->
  n_r:int ->
  n_s:int ->
  float array ->
  float array ->
  join
(** [join_of_samples ~domain ~buckets ~n_r ~n_s sample_r sample_s] builds
    per-relation equi-depth histograms (at most [buckets] buckets each;
    zero-width buckets merge) from the two samples, clamped to the shared
    domain, and retains the sorted samples for adaptive rebuilds.
    @raise Invalid_argument on empty samples, non-finite values,
    non-positive sizes/buckets, or an empty domain. *)

val join_domain : join -> float * float
(** The shared attribute domain. *)

val join_sizes : join -> int * int
(** The relation sizes [(n_r, n_s)] estimates scale by. *)

val join_buckets : join -> int * int
(** Bucket counts of the two equi-depth histograms. *)

val join_samples : join -> float array * float array
(** The retained (sorted, domain-clamped) build samples. *)

val join_estimate : join -> pred:join_pred -> float
(** Estimated size of [R.A pred S.B]: the density-product integral for
    [Join_eq] (each integer value occupying a unit cell), the
    histogram-pair sweep [sum_ij m_i m_j P(x < y)] for [Join_lt], and
    their sum for [Join_le]. *)

val join_to_string : join -> string
(** Textual serialization (["selest-stored-join v1"] header). *)

val join_of_string : string -> (join, string) result
(** Inverse of {!join_to_string}; total on malformed input. *)

val join_spec_of_string : string -> (int, string) result
(** Parse the compact join spec syntax the catalog stores: ["edh"]
    (64 buckets default) or ["edh:128"].  Returns the bucket budget. *)

(** {1 Kind-dispatched summaries}

    What the catalog snapshots and the server caches: one of the three
    summary kinds, serialized with a kind-identifying header line. *)

type kind = Range_kind | Rect_kind | Join_kind

val kind_name : kind -> string
(** ["range"], ["rect"] or ["join"]. *)

val kind_of_name : string -> (kind, string) result
(** Inverse of {!kind_name}; [Error] on anything else. *)

type any = Range of t | Rect of rect | Join of join

val any_kind : any -> kind
(** The constructor's kind. *)

val any_cells : any -> int
(** Summary resolution: grid cells for range, [bins_x * bins_y] for rect,
    total histogram buckets for join. *)

val any_domain : any -> float * float
(** The (x-axis, for rect) estimation domain. *)

val any_to_string : any -> string
(** The kind's serialization — headers stay distinct, so {!any_of_string}
    can dispatch, and a v1 range snapshot loads unchanged. *)

val any_of_string : string -> (any, string) result
(** Parse any of the three summary serializations by header line; total
    on malformed input. *)
