(** Unified selectivity-estimator interface.

    This is the public face of the library: a declarative {!spec} names any
    estimator configuration from the paper (plus the documented
    extensions), {!build} turns a spec and a sample into a queryable
    estimator, and every estimator answers {!selectivity} for range queries
    [Q(a,b)].

    The specs cover the full cast of the paper's experiments: pure
    sampling, the uniform (one-bin) assumption, equi-width / equi-depth /
    max-diff histograms, average shifted histograms, kernel estimators with
    the three boundary policies, and the hybrid estimator. *)

type bins_rule =
  | Fixed_bins of int
  | Normal_scale_bins  (** formula (8) bin count *)
  | Plug_in_bins of int  (** direct plug-in with the given iterations *)

type bandwidth_rule =
  | Fixed_bandwidth of float
  | Normal_scale_bandwidth  (** the 2.345 s n^(-1/5) rule *)
  | Plug_in_bandwidth of int  (** h-DPI with the given iterations *)
  | Lscv_bandwidth  (** least-squares cross-validation (extension) *)

type spec =
  | Sampling
  | Uniform_assumption
  | Equi_width of bins_rule
  | Equi_depth of { bins : int }
  | Max_diff of { bins : int }
  | Ash of { bins : bins_rule; shifts : int }
  | Kernel of {
      kernel : Kernels.Kernel.t;
      boundary : Kde.Estimator.boundary_policy;
      bandwidth : bandwidth_rule;
    }
  | Hybrid_spec of {
      bandwidth : bandwidth_rule;
          (** per-bin rule; [Fixed_bandwidth] and [Lscv_bandwidth] fall back
              to the normal-scale rule inside bins *)
      min_bin_count : int;
      max_change_points : int;
    }
  | Frequency_polygon of bins_rule
      (** extension: piecewise-linear interpolated equi-width histogram
          (Scott), removing the jump points at histogram cost *)
  | V_optimal of { bins : int }
      (** extension: variance-minimizing bin boundaries (Jagadish et al.
          [7]) via dynamic programming on a micro-grid *)
  | Wavelet_spec of { coefficients : int }
      (** extension: Haar-wavelet synopsis (Matias, Vitter & Wang [4],
          cited in the paper's related work) keeping the given number of
          coefficients *)

val kernel_defaults : spec
(** Epanechnikov, boundary kernels, 2-step plug-in — the paper's "Kernel"
    contender in Figure 12. *)

val hybrid_defaults : spec
(** Boundary kernels with per-bin one-step plug-in bandwidths and a
    16-change-point budget — the paper's "Hybrid" contender in Figure 12. *)

val spec_name : spec -> string
(** Short display name, e.g. ["EWH(NS)"], ["Kernel(bk,DPI2)"]. *)

val spec_of_string : string -> (spec, string) result
(** Parse a compact spec syntax (used by the CLI):

    - ["sampling"], ["uniform"]
    - ["ewh"] (normal-scale bins), ["ewh:40"], ["ewh:dpi2"]
    - ["edh:40"], ["mdh:40"] (bins default to 40 when omitted)
    - ["ash"], ["ash:80,10"] (bins[,shifts]; NS bins and 10 shifts default)
    - ["kernel"] (Epanechnikov, boundary kernels, DPI2); options after [:]
      separated by commas: a bandwidth rule ([ns], [dpiN], [lscv],
      [h=<float>]), a boundary policy ([none], [reflection], [bk]) and a
      kernel name ([gaussian], [biweight], ...), in any order
    - ["hybrid"] (defaults), ["hybrid:ns"], ["hybrid:dpi2"]
    - ["fp"], ["fp:40"] (frequency polygon); ["voh"], ["voh:30"]
      (V-optimal); ["wave"], ["wavelet:64"] (Haar-wavelet synopsis)

    Returns [Error message] on anything else. *)

type t

val build : spec -> domain:float * float -> float array -> t
(** [build spec ~domain samples] constructs the estimator from a sample of
    the relation.  When telemetry is enabled the build records a ["build"]
    span with per-phase timings ([selest_build_phase_seconds]; see
    [docs/TELEMETRY.md]); the constructed estimator is identical either
    way.  @raise Invalid_argument on an empty sample, an empty domain, or
    spec parameters out of range (bins or shifts < 1, bandwidth <= 0). *)

val name : t -> string
(** {!spec_name} of the spec this estimator was built from. *)

val spec : t -> spec
(** The spec this estimator was built from. *)

type repr =
  | Sampling_repr of float array  (** the sorted sample (shared storage) *)
  | Histogram_repr of Histograms.Histogram.t
      (** equi-width, equi-depth, max-diff, uniform, V-optimal and wavelet
          specs all lower to a plain histogram *)
  | Ash_repr of Histograms.Ash.t
  | Kde_repr of Kde.Estimator.t
  | Hybrid_repr of Hybrid.Partitioned.t
  | Frequency_polygon_repr of Histograms.Frequency_polygon.t
      (** the fitted structure behind an estimator *)

val repr : t -> repr
(** The fitted structure {!selectivity} closes over, exposed for
    {!Batch.compile}: the batch evaluator lays the same arrays out flat
    instead of rebuilding, which is what makes batch and scalar results
    bit-identical. *)

val selectivity : t -> a:float -> b:float -> float
(** Estimated distribution selectivity of [Q(a,b)], in [[0, 1]].  Feeds
    the [selest_selectivity_seconds] latency histogram when telemetry is
    enabled; the returned value is unaffected. *)

val estimate_count : t -> n_records:int -> a:float -> b:float -> float
(** [selectivity] scaled by the relation size: the estimated query result
    size (instance selectivity times N, Section 2). *)

val density : t -> float -> float option
(** The underlying density estimate where one exists ([None] for pure
    sampling). *)

val has_density : t -> bool
(** Whether this estimator exposes a density — the capability check
    behind {!density}'s option, answerable without probing a point
    (consumers like [Join.Equijoin] use it instead of probing the
    density at an arbitrary coordinate). *)

val default_suite : spec list
(** The estimators of the paper's final comparison (Figure 12): EWH with
    normal-scale bins, kernel with boundary kernels and DPI2, hybrid, and
    ASH with ten shifts. *)
