(** Batch (structure-of-arrays) evaluation of fitted estimators.

    {!Estimator.selectivity} answers one query through a closure, which on
    this toolchain (no flambda) boxes both query bounds and the result on
    every call, and re-derives per-estimator constants per query.
    {!compile} flattens a fitted estimator into plain [float array]s plus
    unboxed scalars once, and {!estimate_into} then evaluates a whole
    query batch inside one loop with no per-query allocation — the hot
    path the serving engine and the [bench micro] target run.

    {b Bit-identity.}  For every estimator spec except the Gaussian
    kernel, batch results are bit-identical to the scalar path: the
    evaluators replay the scalar arithmetic in the same operation order
    over the same float values and share the scalar primitives by forced
    inlining (see the implementation header).  The Gaussian kernel's
    transcendental primitive is replaced by a {!Kernels.Lut} table; the
    resulting selectivity differs from the scalar path by at most twice
    the table's interpolation error (< 1e-6 with the default table — the
    documented tolerance, enforced by [test/test_batch.ml]).

    Query bounds are expected to be non-NaN; both paths clamp them to the
    estimator's domain.  docs/PERFORMANCE.md is the handbook for the
    memory layout, the API and the benchmark numbers. *)

type t
(** A compiled batch plan: flat layout plus the spec it came from.  Plans
    share storage with the estimator they were compiled from (sorted
    samples, histogram edge/count arrays) — cheap to compile, and any
    mutation of those arrays is as forbidden as it is for the scalar
    path. *)

val compile : Estimator.t -> t
(** [compile est] lays out the fitted structure of [est] flat: histogram
    edges and counts (concatenated across shifts for the ASH), sorted
    kernel sample and reflection arrays, per-bin arrays plus flattened
    per-bin kernel estimators for the hybrid, frequency-polygon knots, or
    the sorted sample for pure sampling.  Gaussian kernel plans also
    reference the shared CDF lookup table. *)

val spec : t -> Estimator.spec
(** The spec of the estimator this plan was compiled from. *)

val estimate_into : t -> n:int -> a:float array -> b:float array -> out:float array -> unit
(** [estimate_into t ~n ~a ~b ~out] writes the selectivity of query
    [Q(a.(i), b.(i))] to [out.(i)] for [0 <= i < n].  Steady-state
    allocation-free: all buffers are caller-owned, and the evaluation
    loops box no floats (asserted by the allocation tests and the
    [bench micro] gate).  [n = 0] is a valid empty batch and touches
    nothing.
    @raise Invalid_argument if [n < 0] or any array is shorter than
    [n]. *)

val estimate : t -> a:float array -> b:float array -> float array
(** Convenience wrapper over {!estimate_into} that allocates the result
    array ([n = Array.length a]).
    @raise Invalid_argument if [a] and [b] differ in length. *)
