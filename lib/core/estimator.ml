type bins_rule =
  | Fixed_bins of int
  | Normal_scale_bins
  | Plug_in_bins of int

type bandwidth_rule =
  | Fixed_bandwidth of float
  | Normal_scale_bandwidth
  | Plug_in_bandwidth of int
  | Lscv_bandwidth

type spec =
  | Sampling
  | Uniform_assumption
  | Equi_width of bins_rule
  | Equi_depth of { bins : int }
  | Max_diff of { bins : int }
  | Ash of { bins : bins_rule; shifts : int }
  | Kernel of {
      kernel : Kernels.Kernel.t;
      boundary : Kde.Estimator.boundary_policy;
      bandwidth : bandwidth_rule;
    }
  | Hybrid_spec of {
      bandwidth : bandwidth_rule;
      min_bin_count : int;
      max_change_points : int;
    }
  | Frequency_polygon of bins_rule
  | V_optimal of { bins : int }
  | Wavelet_spec of { coefficients : int }

let kernel_defaults =
  Kernel
    {
      kernel = Kernels.Kernel.Epanechnikov;
      boundary = Kde.Estimator.Boundary_kernels;
      bandwidth = Plug_in_bandwidth 2;
    }

(* Per-bin one-step plug-in bandwidths with a generous change-point budget:
   the configuration that dominates on the change-point-heavy (real-like)
   files while staying competitive on smooth synthetic data. *)
let hybrid_defaults =
  Hybrid_spec { bandwidth = Plug_in_bandwidth 1; min_bin_count = 100; max_change_points = 16 }

let bins_rule_name = function
  | Fixed_bins k -> string_of_int k
  | Normal_scale_bins -> "NS"
  | Plug_in_bins i -> Printf.sprintf "DPI%d" i

let bandwidth_rule_name = function
  | Fixed_bandwidth h -> Printf.sprintf "h=%g" h
  | Normal_scale_bandwidth -> "NS"
  | Plug_in_bandwidth i -> Printf.sprintf "DPI%d" i
  | Lscv_bandwidth -> "LSCV"

let spec_name = function
  | Sampling -> "Sampling"
  | Uniform_assumption -> "Uniform"
  | Equi_width rule -> Printf.sprintf "EWH(%s)" (bins_rule_name rule)
  | Equi_depth { bins } -> Printf.sprintf "EDH(%d)" bins
  | Max_diff { bins } -> Printf.sprintf "MDH(%d)" bins
  | Ash { bins; shifts } -> Printf.sprintf "ASH(%s,m=%d)" (bins_rule_name bins) shifts
  | Kernel { kernel; boundary; bandwidth } ->
    Printf.sprintf "Kernel(%s,%s,%s)"
      (Kernels.Kernel.name kernel)
      (Kde.Estimator.boundary_policy_name boundary)
      (bandwidth_rule_name bandwidth)
  | Hybrid_spec { bandwidth; _ } -> Printf.sprintf "Hybrid(%s)" (bandwidth_rule_name bandwidth)
  | Frequency_polygon rule -> Printf.sprintf "FP(%s)" (bins_rule_name rule)
  | V_optimal { bins } -> Printf.sprintf "VOH(%d)" bins
  | Wavelet_spec { coefficients } -> Printf.sprintf "Wave(%d)" coefficients

(* --- telemetry (metric names documented in docs/TELEMETRY.md) --- *)

let m_builds =
  Telemetry.Metrics.counter "selest_build_total" ~help:"Estimator.build invocations"

let m_selectivity =
  Telemetry.Metrics.histogram "selest_selectivity_seconds"
    ~help:"Latency of Estimator.selectivity calls"

let build_hist spec_v =
  Telemetry.Metrics.histogram "selest_build_seconds"
    ~labels:[ ("spec", spec_name spec_v) ]
    ~help:"End-to-end Estimator.build latency per spec"

(* One phase of a build: a span (nested under "build") plus a per-spec,
   per-phase latency histogram.  The phases wrapped in [build] partition
   each build branch, so for every spec the phase sums add up to the total
   recorded in selest_build_seconds (and to the harness's build_s) up to
   closure-setup noise. *)
let phase spec_v name f =
  if not (Telemetry.Control.is_enabled ()) then f ()
  else
    Telemetry.Span.with_span
      ~hist:
        (Telemetry.Metrics.histogram "selest_build_phase_seconds"
           ~labels:[ ("phase", name); ("spec", spec_name spec_v) ]
           ~help:"Estimator.build time per build phase and spec")
      ("build." ^ name) f

(* --- compact spec syntax (CLI) --- *)

let split_options s =
  match String.index_opt s ':' with
  | None -> (s, [])
  | Some i ->
    let head = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (head, String.split_on_char ',' rest)

let parse_bandwidth_option opt =
  let starts_with prefix = String.length opt >= String.length prefix
                           && String.sub opt 0 (String.length prefix) = prefix in
  if opt = "ns" then Some Normal_scale_bandwidth
  else if opt = "lscv" then Some Lscv_bandwidth
  else if starts_with "dpi" then
    int_of_string_opt (String.sub opt 3 (String.length opt - 3))
    |> Option.map (fun i -> Plug_in_bandwidth i)
  else if starts_with "h=" then
    float_of_string_opt (String.sub opt 2 (String.length opt - 2))
    |> Option.map (fun h -> Fixed_bandwidth h)
  else None

let parse_boundary_option = function
  | "none" -> Some Kde.Estimator.No_treatment
  | "reflection" -> Some Kde.Estimator.Reflection
  | "bk" | "boundary-kernels" -> Some Kde.Estimator.Boundary_kernels
  | _ -> None

let parse_bins_option opt =
  let starts_with prefix = String.length opt >= String.length prefix
                           && String.sub opt 0 (String.length prefix) = prefix in
  if opt = "ns" then Some Normal_scale_bins
  else if starts_with "dpi" then
    int_of_string_opt (String.sub opt 3 (String.length opt - 3))
    |> Option.map (fun i -> Plug_in_bins i)
  else int_of_string_opt opt |> Option.map (fun k -> Fixed_bins k)

let spec_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let head, opts = split_options s in
  let invalid opt = Error (Printf.sprintf "unknown option %S for estimator %S" opt head) in
  match (head, opts) with
  | "sampling", [] -> Ok Sampling
  | "uniform", [] -> Ok Uniform_assumption
  | "ewh", [] -> Ok (Equi_width Normal_scale_bins)
  | "ewh", [ opt ] -> (
    match parse_bins_option opt with Some rule -> Ok (Equi_width rule) | None -> invalid opt)
  | "edh", [] -> Ok (Equi_depth { bins = 40 })
  | "edh", [ opt ] -> (
    match int_of_string_opt opt with
    | Some bins when bins >= 1 -> Ok (Equi_depth { bins })
    | Some _ | None -> invalid opt)
  | "mdh", [] -> Ok (Max_diff { bins = 40 })
  | "mdh", [ opt ] -> (
    match int_of_string_opt opt with
    | Some bins when bins >= 1 -> Ok (Max_diff { bins })
    | Some _ | None -> invalid opt)
  | "ash", [] -> Ok (Ash { bins = Normal_scale_bins; shifts = 10 })
  | "ash", [ opt ] -> (
    match parse_bins_option opt with
    | Some rule -> Ok (Ash { bins = rule; shifts = 10 })
    | None -> invalid opt)
  | "ash", [ opt; shifts_s ] -> (
    match (parse_bins_option opt, int_of_string_opt shifts_s) with
    | Some rule, Some shifts when shifts >= 1 -> Ok (Ash { bins = rule; shifts })
    | _, _ -> invalid (opt ^ "," ^ shifts_s))
  | "kernel", opts ->
    let rec apply acc = function
      | [] -> Ok acc
      | opt :: rest -> (
        match parse_bandwidth_option opt with
        | Some bw -> (
          match acc with
          | Kernel k -> apply (Kernel { k with bandwidth = bw }) rest
          | _ -> assert false)
        | None -> (
          match parse_boundary_option opt with
          | Some boundary -> (
            match acc with
            | Kernel k -> apply (Kernel { k with boundary }) rest
            | _ -> assert false)
          | None -> (
            match Kernels.Kernel.of_name opt with
            | Some kernel -> (
              match acc with
              | Kernel k -> apply (Kernel { k with kernel }) rest
              | _ -> assert false)
            | None -> invalid opt)))
    in
    apply kernel_defaults (List.filter (fun o -> o <> "") opts)
  | "fp", [] -> Ok (Frequency_polygon Normal_scale_bins)
  | "fp", [ opt ] -> (
    match parse_bins_option opt with
    | Some rule -> Ok (Frequency_polygon rule)
    | None -> invalid opt)
  | "voh", [] -> Ok (V_optimal { bins = 40 })
  | "voh", [ opt ] -> (
    match int_of_string_opt opt with
    | Some bins when bins >= 1 -> Ok (V_optimal { bins })
    | Some _ | None -> invalid opt)
  | ("wave" | "wavelet"), [] -> Ok (Wavelet_spec { coefficients = 40 })
  | ("wave" | "wavelet"), [ opt ] -> (
    match int_of_string_opt opt with
    | Some coefficients when coefficients >= 1 -> Ok (Wavelet_spec { coefficients })
    | Some _ | None -> invalid opt)
  | "hybrid", [] -> Ok hybrid_defaults
  | "hybrid", [ opt ] -> (
    match (parse_bandwidth_option opt, hybrid_defaults) with
    | Some bw, Hybrid_spec h -> Ok (Hybrid_spec { h with bandwidth = bw })
    | None, _ -> invalid opt
    | Some _, _ -> assert false)
  | _, _ -> Error (Printf.sprintf "unknown estimator %S" s)

(* The fitted structure behind the closures, exposed so the batch-plan
   compiler (Batch.compile) can lay it out flat without rebuilding.  Specs
   that lower to a plain histogram (Uniform, V-optimal, wavelet) share the
   Histogram_repr constructor. *)
type repr =
  | Sampling_repr of float array
  | Histogram_repr of Histograms.Histogram.t
  | Ash_repr of Histograms.Ash.t
  | Kde_repr of Kde.Estimator.t
  | Hybrid_repr of Hybrid.Partitioned.t
  | Frequency_polygon_repr of Histograms.Frequency_polygon.t

(* The queryable estimator: name + closures over the fitted structure. *)
type t = {
  spec : spec;
  selectivity : a:float -> b:float -> float;
  density : (float -> float) option;
  repr : repr;
}

let name t = spec_name t.spec
let spec t = t.spec
let repr t = t.repr

(* The per-call flag check keeps the disabled path allocation-free: one
   atomic load, then straight into the fitted closure. *)
let selectivity t ~a ~b =
  if not (Telemetry.Control.is_enabled ()) then t.selectivity ~a ~b
  else begin
    let t0 = Telemetry.Control.now_ns () in
    let s = t.selectivity ~a ~b in
    Telemetry.Metrics.observe_ns m_selectivity (Telemetry.Control.now_ns () - t0);
    s
  end
let density t x = Option.map (fun f -> f x) t.density
let has_density t = Option.is_some t.density

let estimate_count t ~n_records ~a ~b = float_of_int n_records *. t.selectivity ~a ~b

let resolve_bins rule ~domain samples =
  match rule with
  | Fixed_bins k ->
    if k < 1 then invalid_arg "Estimator.build: bins must be >= 1";
    k
  | Normal_scale_bins -> Bandwidth.Normal_scale.bin_count_of_samples ~domain samples
  | Plug_in_bins iterations -> Bandwidth.Plug_in.bin_count ~iterations ~domain samples

let resolve_bandwidth rule ~kernel samples =
  match rule with
  | Fixed_bandwidth h ->
    if h <= 0.0 || not (Float.is_finite h) then
      invalid_arg "Estimator.build: bandwidth must be positive and finite";
    h
  | Normal_scale_bandwidth -> Bandwidth.Normal_scale.bandwidth_of_samples ~kernel samples
  | Plug_in_bandwidth iterations -> Bandwidth.Plug_in.bandwidth ~iterations ~kernel samples
  | Lscv_bandwidth -> Bandwidth.Lscv.bandwidth ~kernel samples

let sampling_estimator samples =
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  xs

let sampling_selectivity xs =
  let n = float_of_int (Array.length xs) in
  fun ~a ~b ->
    if a > b then 0.0
    else begin
      let c =
        Stats.Array_util.float_upper_bound xs b - Stats.Array_util.float_lower_bound xs a
      in
      float_of_int c /. n
    end

(* Build phases (telemetry): "bandwidth" covers smoothing-parameter
   selection (bandwidth and bin-count rules alike), "sort" the
   sorted-sample index construction, "bins" the bin/coefficient structure
   construction.  The hybrid estimator's internal sub-phases (including
   bin merging) are recorded separately by Hybrid.Partitioned under
   selest_hybrid_phase_seconds. *)
let build_estimator spec_v ~domain samples =
  let lo, hi = domain in
  match spec_v with
  | Sampling ->
    let xs = phase spec_v "sort" (fun () -> sampling_estimator samples) in
    { spec = spec_v; selectivity = sampling_selectivity xs; density = None;
      repr = Sampling_repr xs }
  | Uniform_assumption ->
    let h = phase spec_v "bins" (fun () -> Histograms.Builders.uniform ~domain samples) in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }
  | Equi_width rule ->
    let bins = phase spec_v "bandwidth" (fun () -> resolve_bins rule ~domain samples) in
    let h =
      phase spec_v "bins" (fun () -> Histograms.Builders.equi_width ~domain ~bins samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }
  | Equi_depth { bins } ->
    let h =
      phase spec_v "bins" (fun () -> Histograms.Builders.equi_depth ~domain ~bins samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }
  | Max_diff { bins } ->
    let h =
      phase spec_v "bins" (fun () -> Histograms.Builders.max_diff ~domain ~bins samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }
  | Ash { bins; shifts } ->
    let bins = phase spec_v "bandwidth" (fun () -> resolve_bins bins ~domain samples) in
    let ash =
      phase spec_v "bins" (fun () -> Histograms.Ash.build ~domain ~bins ~shifts samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Ash.selectivity ash ~a ~b);
      density = Some (Histograms.Ash.density ash);
      repr = Ash_repr ash;
    }
  | Kernel { kernel; boundary; bandwidth } ->
    let h = phase spec_v "bandwidth" (fun () -> resolve_bandwidth bandwidth ~kernel samples) in
    (* Boundary kernels require 2h <= domain width; oversmoothed bandwidths
       on tiny domains are clamped rather than rejected. *)
    let h =
      match boundary with
      | Kde.Estimator.Boundary_kernels -> Float.min h (0.499 *. (hi -. lo))
      | Kde.Estimator.No_treatment | Kde.Estimator.Reflection -> h
    in
    let est =
      phase spec_v "sort" (fun () -> Kde.Estimator.create ~kernel ~boundary ~domain ~h samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Kde.Estimator.selectivity est ~a ~b);
      density = Some (Kde.Estimator.density est);
      repr = Kde_repr est;
    }
  | Hybrid_spec { bandwidth; min_bin_count; max_change_points } ->
    let rule =
      match bandwidth with
      | Plug_in_bandwidth i -> Hybrid.Partitioned.Plug_in_rule i
      | Normal_scale_bandwidth | Fixed_bandwidth _ | Lscv_bandwidth ->
        Hybrid.Partitioned.Normal_scale_rule
    in
    let config =
      {
        Hybrid.Partitioned.default_config with
        Hybrid.Partitioned.bandwidth_rule = rule;
        min_bin_count;
        change_points =
          { Hybrid.Change_point.default_config with max_change_points };
      }
    in
    let est = phase spec_v "bins" (fun () -> Hybrid.Partitioned.build ~config ~domain samples) in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Hybrid.Partitioned.selectivity est ~a ~b);
      density = Some (Hybrid.Partitioned.density est);
      repr = Hybrid_repr est;
    }
  | Frequency_polygon rule ->
    let bins = phase spec_v "bandwidth" (fun () -> resolve_bins rule ~domain samples) in
    let fp =
      phase spec_v "bins" (fun () -> Histograms.Frequency_polygon.build ~domain ~bins samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Frequency_polygon.selectivity fp ~a ~b);
      density = Some (Histograms.Frequency_polygon.density fp);
      repr = Frequency_polygon_repr fp;
    }
  | V_optimal { bins } ->
    let h = phase spec_v "bins" (fun () -> Histograms.V_optimal.build ~domain ~bins samples) in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }
  | Wavelet_spec { coefficients } ->
    if coefficients < 1 then invalid_arg "Estimator.build: coefficients must be >= 1";
    let h =
      phase spec_v "bins" (fun () -> Histograms.Wavelet.build ~domain ~coefficients samples)
    in
    {
      spec = spec_v;
      selectivity = (fun ~a ~b -> Histograms.Histogram.selectivity h ~a ~b);
      density = Some (Histograms.Histogram.density h);
      repr = Histogram_repr h;
    }

let build spec_v ~domain samples =
  if Array.length samples = 0 then invalid_arg "Estimator.build: empty sample";
  let lo, hi = domain in
  if lo >= hi then invalid_arg "Estimator.build: empty domain";
  if not (Telemetry.Control.is_enabled ()) then build_estimator spec_v ~domain samples
  else begin
    Telemetry.Metrics.incr m_builds;
    Telemetry.Span.with_span ~hist:(build_hist spec_v) "build" (fun () ->
        build_estimator spec_v ~domain samples)
  end

let default_suite =
  [
    Equi_width Normal_scale_bins;
    kernel_defaults;
    hybrid_defaults;
    Ash { bins = Normal_scale_bins; shifts = 10 };
  ]
