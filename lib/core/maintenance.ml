type reason =
  | Insert_volume
  | Feedback_error

type t = {
  spec : Estimator.spec;
  domain : float * float;
  refresh_after_change : float;
  max_feedback_mre : float;
  feedback_window : int;
  mutable est : Estimator.t;
  mutable base_records : int; (* relation size at the last refresh *)
  mutable changed : int; (* |inserts| + |deletes| since the last refresh *)
  mutable current_records : int;
  mutable errors : float list; (* most recent first, length <= window *)
  mutable refreshes : int;
}

let create ?(refresh_after_change = 0.2) ?(max_feedback_mre = 0.5) ?(feedback_window = 50)
    ~spec ~domain ~sample ~n_records () =
  if refresh_after_change <= 0.0 then
    invalid_arg "Maintenance.create: refresh_after_change must be positive";
  if max_feedback_mre <= 0.0 then
    invalid_arg "Maintenance.create: max_feedback_mre must be positive";
  if feedback_window <= 0 then invalid_arg "Maintenance.create: feedback_window must be positive";
  if n_records <= 0 then invalid_arg "Maintenance.create: n_records must be positive";
  {
    spec;
    domain;
    refresh_after_change;
    max_feedback_mre;
    feedback_window;
    est = Estimator.build spec ~domain sample;
    base_records = n_records;
    changed = 0;
    current_records = n_records;
    errors = [];
    refreshes = 0;
  }

let estimator t = t.est
let n_records t = t.current_records

let estimate_count t ~a ~b =
  Estimator.estimate_count t.est ~n_records:t.current_records ~a ~b

let record_inserts t delta =
  if t.current_records + delta < 0 then
    invalid_arg "Maintenance.record_inserts: relation size would become negative";
  t.current_records <- t.current_records + delta;
  t.changed <- t.changed + abs delta

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let record_feedback t ~a ~b ~actual_count =
  if actual_count < 0 then invalid_arg "Maintenance.record_feedback: negative count";
  if actual_count > 0 then begin
    let predicted = estimate_count t ~a ~b in
    let rel = Float.abs (predicted -. float_of_int actual_count) /. float_of_int actual_count in
    t.errors <- take t.feedback_window (rel :: t.errors)
  end

let changed_count t = t.changed

let needs_refresh t =
  if float_of_int t.changed >= t.refresh_after_change *. float_of_int t.base_records then
    Some Insert_volume
  else begin
    (* Demand a meaningfully full window before trusting the error signal. *)
    let m = List.length t.errors in
    if m >= Int.max 5 (t.feedback_window / 2) then begin
      let mean = List.fold_left ( +. ) 0.0 t.errors /. float_of_int m in
      if mean > t.max_feedback_mre then Some Feedback_error else None
    end
    else None
  end

let refresh t ~sample ~n_records =
  if n_records <= 0 then invalid_arg "Maintenance.refresh: n_records must be positive";
  t.est <- Estimator.build t.spec ~domain:t.domain sample;
  t.base_records <- n_records;
  t.current_records <- n_records;
  t.changed <- 0;
  t.errors <- [];
  t.refreshes <- t.refreshes + 1

let refresh_count t = t.refreshes
