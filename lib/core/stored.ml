type t = {
  lo : float;
  hi : float;
  weights : float array; (* per-cell selectivity mass *)
}

(* [who] keeps validation messages named after the entry point the
   caller actually used. *)
let of_fn_named who ?(cells = 256) ~domain:(lo, hi) f =
  if cells <= 0 then invalid_arg (who ^ ": cells must be positive");
  if lo >= hi then invalid_arg (who ^ ": empty domain");
  let w = (hi -. lo) /. float_of_int cells in
  let weights =
    Array.init cells (fun i ->
        let a = lo +. (float_of_int i *. w) in
        Float.max 0.0 (f ~a ~b:(a +. w)))
  in
  { lo; hi; weights }

let of_fn ?cells ~domain f = of_fn_named "Stored.of_fn" ?cells ~domain f

let of_estimator ?cells ~domain est =
  of_fn_named "Stored.of_estimator" ?cells ~domain (fun ~a ~b ->
      Estimator.selectivity est ~a ~b)

let of_sample ?cells ?(spec = Estimator.kernel_defaults) ~domain sample =
  of_estimator ?cells ~domain (Estimator.build spec ~domain sample)

let cells t = Array.length t.weights
let domain t = (t.lo, t.hi)

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let k = Array.length t.weights in
    let w = (t.hi -. t.lo) /. float_of_int k in
    let first = Int.max 0 (int_of_float (Float.floor ((a -. t.lo) /. w))) in
    let last = Int.min (k - 1) (int_of_float (Float.floor ((b -. t.lo) /. w))) in
    let acc = ref 0.0 in
    for i = first to last do
      let c_lo = t.lo +. (float_of_int i *. w) in
      let c_hi = c_lo +. w in
      let overlap = Float.min b c_hi -. Float.max a c_lo in
      if overlap > 0.0 then acc := !acc +. (t.weights.(i) *. overlap /. w)
    done;
    Float.max 0.0 (Float.min 1.0 !acc)
  end

(* Batch variant of [selectivity]: same per-cell arithmetic in the same
   order, one query per output slot, nothing allocated ([@inline always]
   on nothing needed — the whole loop is one function body). *)
let selectivity_into t ~pos ~len ~a ~b ~out =
  if pos < 0 || len < 0 then invalid_arg "Stored.selectivity_into: negative range";
  if pos + len > Array.length a || pos + len > Array.length b || pos + len > Array.length out
  then invalid_arg "Stored.selectivity_into: query arrays shorter than pos + len";
  let k = Array.length t.weights in
  let w = (t.hi -. t.lo) /. float_of_int k in
  let weights = t.weights in
  let t_lo = t.lo in
  for qi = pos to pos + len - 1 do
    let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
    let v =
      if qa > qb then 0.0
      else begin
        let first = Int.max 0 (int_of_float (Float.floor ((qa -. t_lo) /. w))) in
        let last = Int.min (k - 1) (int_of_float (Float.floor ((qb -. t_lo) /. w))) in
        let acc = ref 0.0 in
        for i = first to last do
          let c_lo = t_lo +. (float_of_int i *. w) in
          let c_hi = c_lo +. w in
          let overlap = Float.min qb c_hi -. Float.max qa c_lo in
          if overlap > 0.0 then acc := !acc +. (Array.unsafe_get weights i *. overlap /. w)
        done;
        Float.max 0.0 (Float.min 1.0 !acc)
      end
    in
    Array.unsafe_set out qi v
  done

let to_string t =
  let buf = Buffer.create (16 * Array.length t.weights) in
  Buffer.add_string buf "selest-stored v1\n";
  Buffer.add_string buf (Printf.sprintf "domain %.17g %.17g\n" t.lo t.hi);
  Buffer.add_string buf (Printf.sprintf "cells %d\n" (Array.length t.weights));
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g\n" v)) t.weights;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | magic :: domain_line :: cells_line :: rest when String.trim magic = "selest-stored v1" -> (
    let parse_domain () =
      match String.split_on_char ' ' (String.trim domain_line) with
      | [ "domain"; a; b ] -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some lo, Some hi when lo < hi -> Ok (lo, hi)
        | _ -> Error "Stored.of_string: malformed domain bounds")
      | _ -> Error "Stored.of_string: missing domain line"
    in
    let parse_cells () =
      match String.split_on_char ' ' (String.trim cells_line) with
      | [ "cells"; n ] -> (
        match int_of_string_opt n with
        | Some k when k > 0 -> Ok k
        | _ -> Error "Stored.of_string: malformed cell count")
      | _ -> Error "Stored.of_string: missing cells line"
    in
    match (parse_domain (), parse_cells ()) with
    | Error e, _ | _, Error e -> Error e
    | Ok (lo, hi), Ok k -> (
      let values =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" then None else Some (float_of_string_opt line))
          rest
      in
      if List.exists (fun v -> v = None) values then
        Error "Stored.of_string: malformed weight"
      else begin
        let weights = Array.of_list (List.filter_map Fun.id values) in
        if Array.length weights <> k then
          Error
            (Printf.sprintf "Stored.of_string: expected %d weights, found %d" k
               (Array.length weights))
        else if Array.exists (fun v -> v < 0.0 || not (Float.is_finite v)) weights then
          Error "Stored.of_string: weights must be non-negative and finite"
        else Ok { lo; hi; weights }
      end))
  | _ -> Error "Stored.of_string: missing header"
