type t = {
  lo : float;
  hi : float;
  weights : float array; (* per-cell selectivity mass *)
}

(* [who] keeps validation messages named after the entry point the
   caller actually used. *)
let of_fn_named who ?(cells = 256) ~domain:(lo, hi) f =
  if cells <= 0 then invalid_arg (who ^ ": cells must be positive");
  if lo >= hi then invalid_arg (who ^ ": empty domain");
  let w = (hi -. lo) /. float_of_int cells in
  let weights =
    Array.init cells (fun i ->
        let a = lo +. (float_of_int i *. w) in
        Float.max 0.0 (f ~a ~b:(a +. w)))
  in
  { lo; hi; weights }

let of_fn ?cells ~domain f = of_fn_named "Stored.of_fn" ?cells ~domain f

let of_estimator ?cells ~domain est =
  of_fn_named "Stored.of_estimator" ?cells ~domain (fun ~a ~b ->
      Estimator.selectivity est ~a ~b)

let of_sample ?cells ?(spec = Estimator.kernel_defaults) ~domain sample =
  of_estimator ?cells ~domain (Estimator.build spec ~domain sample)

let cells t = Array.length t.weights
let domain t = (t.lo, t.hi)

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let k = Array.length t.weights in
    let w = (t.hi -. t.lo) /. float_of_int k in
    let first = Int.max 0 (int_of_float (Float.floor ((a -. t.lo) /. w))) in
    let last = Int.min (k - 1) (int_of_float (Float.floor ((b -. t.lo) /. w))) in
    let acc = ref 0.0 in
    for i = first to last do
      let c_lo = t.lo +. (float_of_int i *. w) in
      let c_hi = c_lo +. w in
      let overlap = Float.min b c_hi -. Float.max a c_lo in
      if overlap > 0.0 then acc := !acc +. (t.weights.(i) *. overlap /. w)
    done;
    Float.max 0.0 (Float.min 1.0 !acc)
  end

(* Batch variant of [selectivity]: same per-cell arithmetic in the same
   order, one query per output slot, nothing allocated ([@inline always]
   on nothing needed — the whole loop is one function body). *)
let selectivity_into t ~pos ~len ~a ~b ~out =
  if pos < 0 || len < 0 then invalid_arg "Stored.selectivity_into: negative range";
  if pos + len > Array.length a || pos + len > Array.length b || pos + len > Array.length out
  then invalid_arg "Stored.selectivity_into: query arrays shorter than pos + len";
  let k = Array.length t.weights in
  let w = (t.hi -. t.lo) /. float_of_int k in
  let weights = t.weights in
  let t_lo = t.lo in
  for qi = pos to pos + len - 1 do
    let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
    let v =
      if qa > qb then 0.0
      else begin
        let first = Int.max 0 (int_of_float (Float.floor ((qa -. t_lo) /. w))) in
        let last = Int.min (k - 1) (int_of_float (Float.floor ((qb -. t_lo) /. w))) in
        let acc = ref 0.0 in
        for i = first to last do
          let c_lo = t_lo +. (float_of_int i *. w) in
          let c_hi = c_lo +. w in
          let overlap = Float.min qb c_hi -. Float.max qa c_lo in
          if overlap > 0.0 then acc := !acc +. (Array.unsafe_get weights i *. overlap /. w)
        done;
        Float.max 0.0 (Float.min 1.0 !acc)
      end
    in
    Array.unsafe_set out qi v
  done

let to_string t =
  let buf = Buffer.create (16 * Array.length t.weights) in
  Buffer.add_string buf "selest-stored v1\n";
  Buffer.add_string buf (Printf.sprintf "domain %.17g %.17g\n" t.lo t.hi);
  Buffer.add_string buf (Printf.sprintf "cells %d\n" (Array.length t.weights));
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g\n" v)) t.weights;
  Buffer.contents buf

let magic_range = "selest-stored v1"

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | magic :: domain_line :: cells_line :: rest when String.trim magic = magic_range -> (
    let parse_domain () =
      match String.split_on_char ' ' (String.trim domain_line) with
      | [ "domain"; a; b ] -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some lo, Some hi when lo < hi -> Ok (lo, hi)
        | _ -> Error "Stored.of_string: malformed domain bounds")
      | _ -> Error "Stored.of_string: missing domain line"
    in
    let parse_cells () =
      match String.split_on_char ' ' (String.trim cells_line) with
      | [ "cells"; n ] -> (
        match int_of_string_opt n with
        | Some k when k > 0 -> Ok k
        | _ -> Error "Stored.of_string: malformed cell count")
      | _ -> Error "Stored.of_string: missing cells line"
    in
    match (parse_domain (), parse_cells ()) with
    | Error e, _ | _, Error e -> Error e
    | Ok (lo, hi), Ok k -> (
      let values =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" then None else Some (float_of_string_opt line))
          rest
      in
      if List.exists (fun v -> v = None) values then
        Error "Stored.of_string: malformed weight"
      else begin
        let weights = Array.of_list (List.filter_map Fun.id values) in
        if Array.length weights <> k then
          Error
            (Printf.sprintf "Stored.of_string: expected %d weights, found %d" k
               (Array.length weights))
        else if Array.exists (fun v -> v < 0.0 || not (Float.is_finite v)) weights then
          Error "Stored.of_string: weights must be non-negative and finite"
        else Ok { lo; hi; weights }
      end))
  | _ -> Error "Stored.of_string: missing header"

(* ---------------- rectangle (2-D grid) summaries ---------------- *)

type rect = {
  rx_lo : float;
  ry_lo : float;
  rwx : float; (* cell width along x *)
  rwy : float;
  rbins_x : int;
  rbins_y : int;
  rcounts : float array; (* row-major: cell (i, j) at [j * bins_x + i] *)
  rtotal : float;
}

(* Closed-rectangle-on-the-integer-grid canonicalization: the one
   semantics every 2-D estimator agrees on.  A query [x_lo, x_hi] x
   [y_lo, y_hi] means the set of integer points it contains; the
   continuous rectangle actually evaluated is the union of their unit
   cells, [ceil x_lo - 0.5, floor x_hi + 0.5] per axis.  Queries already
   phrased on half-integer cell edges (the workload generator's form) map
   to themselves, so this is invisible to them; a degenerate [a, a] query
   becomes the unit cell around [a], matching the inclusive exact count.
   [None] when no integer point lies inside (including inverted and NaN
   bounds). *)
let canonical_rect ~x_lo ~x_hi ~y_lo ~y_hi =
  if
    Float.is_nan x_lo || Float.is_nan x_hi || Float.is_nan y_lo || Float.is_nan y_hi
  then None
  else begin
    let ix_lo = Float.ceil x_lo and ix_hi = Float.floor x_hi in
    let iy_lo = Float.ceil y_lo and iy_hi = Float.floor y_hi in
    if ix_lo > ix_hi || iy_lo > iy_hi then None
    else Some (ix_lo -. 0.5, ix_hi +. 0.5, iy_lo -. 0.5, iy_hi +. 0.5)
  end

let rect_of_counts_exn who ~domain_x:(x_lo, x_hi) ~domain_y:(y_lo, y_hi) ~bins_x ~bins_y
    ~counts ~total =
  if x_lo >= x_hi || y_lo >= y_hi then invalid_arg (who ^ ": empty domain");
  if bins_x <= 0 || bins_y <= 0 then invalid_arg (who ^ ": bins must be positive");
  if Array.length counts <> bins_x * bins_y then
    invalid_arg (who ^ ": counts length must be bins_x * bins_y");
  if total <= 0.0 || not (Float.is_finite total) then
    invalid_arg (who ^ ": total must be positive and finite");
  {
    rx_lo = x_lo;
    ry_lo = y_lo;
    rwx = (x_hi -. x_lo) /. float_of_int bins_x;
    rwy = (y_hi -. y_lo) /. float_of_int bins_y;
    rbins_x = bins_x;
    rbins_y = bins_y;
    rcounts = counts;
    rtotal = total;
  }

let rect_of_points ~domain_x:(x_lo, x_hi) ~domain_y:(y_lo, y_hi) ~bins_x ~bins_y points =
  if x_lo >= x_hi || y_lo >= y_hi then invalid_arg "Stored.rect_of_points: empty domain";
  if bins_x <= 0 || bins_y <= 0 then
    invalid_arg "Stored.rect_of_points: bins must be positive";
  if Array.length points = 0 then invalid_arg "Stored.rect_of_points: empty sample";
  let wx = (x_hi -. x_lo) /. float_of_int bins_x in
  let wy = (y_hi -. y_lo) /. float_of_int bins_y in
  let counts = Array.make (bins_x * bins_y) 0.0 in
  (* Clamp in float space before the int conversion: a point far outside
     the domain (or infinite) must land in an edge cell, not in
     [int_of_float]'s unspecified result. *)
  let cell_index lo w bins v =
    int_of_float
      (Float.max 0.0 (Float.min (float_of_int (bins - 1)) (Float.floor ((v -. lo) /. w))))
  in
  Array.iter
    (fun (x, y) ->
      let i = cell_index x_lo wx bins_x x in
      let j = cell_index y_lo wy bins_y y in
      counts.((j * bins_x) + i) <- counts.((j * bins_x) + i) +. 1.0)
    points;
  {
    rx_lo = x_lo;
    ry_lo = y_lo;
    rwx = wx;
    rwy = wy;
    rbins_x = bins_x;
    rbins_y = bins_y;
    rcounts = counts;
    rtotal = float_of_int (Array.length points);
  }

let rect_of_fn ~domain_x:(x_lo, x_hi) ~domain_y:(y_lo, y_hi) ~bins_x ~bins_y f =
  if x_lo >= x_hi || y_lo >= y_hi then invalid_arg "Stored.rect_of_fn: empty domain";
  if bins_x <= 0 || bins_y <= 0 then invalid_arg "Stored.rect_of_fn: bins must be positive";
  let wx = (x_hi -. x_lo) /. float_of_int bins_x in
  let wy = (y_hi -. y_lo) /. float_of_int bins_y in
  let counts =
    Array.init (bins_x * bins_y) (fun k ->
        let i = k mod bins_x and j = k / bins_x in
        let cx_lo = x_lo +. (float_of_int i *. wx) in
        let cy_lo = y_lo +. (float_of_int j *. wy) in
        Float.max 0.0
          (f ~x_lo:cx_lo ~x_hi:(cx_lo +. wx) ~y_lo:cy_lo ~y_hi:(cy_lo +. wy)))
  in
  {
    rx_lo = x_lo;
    ry_lo = y_lo;
    rwx = wx;
    rwy = wy;
    rbins_x = bins_x;
    rbins_y = bins_y;
    rcounts = counts;
    rtotal = 1.0;
  }

let rect_bins r = (r.rbins_x, r.rbins_y)

let rect_domains r =
  ( (r.rx_lo, r.rx_lo +. (r.rwx *. float_of_int r.rbins_x)),
    (r.ry_lo, r.ry_lo +. (r.rwy *. float_of_int r.rbins_y)) )

(* Overlap of [lo, hi] with cell [k] along an axis, as a fraction of the
   cell width (the Hist2d arithmetic, verbatim — Multidim.Hist2d delegates
   here, which is what makes served rectangles bit-identical to direct
   library calls). *)
let overlap_fraction ~origin ~w k lo hi =
  let c_lo = origin +. (float_of_int k *. w) in
  let c_hi = c_lo +. w in
  let o = Float.min hi c_hi -. Float.max lo c_lo in
  if o <= 0.0 then 0.0 else o /. w

let rect_selectivity r ~x_lo ~x_hi ~y_lo ~y_hi =
  match canonical_rect ~x_lo ~x_hi ~y_lo ~y_hi with
  | None -> 0.0
  | Some (x_lo, x_hi, y_lo, y_hi) ->
    (* Cell index bounds, clamped in float space so infinite canonical
       bounds (e.g. an unbounded query) hit the edge cells rather than
       [int_of_float]'s unspecified result. *)
    let clamp_index ~origin ~w ~bins v =
      int_of_float
        (Float.max 0.0
           (Float.min (float_of_int (bins - 1)) (Float.floor ((v -. origin) /. w))))
    in
    let i0 = clamp_index ~origin:r.rx_lo ~w:r.rwx ~bins:r.rbins_x x_lo in
    let i1 = clamp_index ~origin:r.rx_lo ~w:r.rwx ~bins:r.rbins_x x_hi in
    let j0 = clamp_index ~origin:r.ry_lo ~w:r.rwy ~bins:r.rbins_y y_lo in
    let j1 = clamp_index ~origin:r.ry_lo ~w:r.rwy ~bins:r.rbins_y y_hi in
    let acc = ref 0.0 in
    for j = j0 to j1 do
      let fy = overlap_fraction ~origin:r.ry_lo ~w:r.rwy j y_lo y_hi in
      if fy > 0.0 then
        for i = i0 to i1 do
          let fx = overlap_fraction ~origin:r.rx_lo ~w:r.rwx i x_lo x_hi in
          if fx > 0.0 then acc := !acc +. (r.rcounts.((j * r.rbins_x) + i) *. fx *. fy)
        done
    done;
    Float.max 0.0 (Float.min 1.0 (!acc /. r.rtotal))

let rect_density r x y =
  let i = Float.floor ((x -. r.rx_lo) /. r.rwx) in
  let j = Float.floor ((y -. r.ry_lo) /. r.rwy) in
  if
    (not (i >= 0.0 && i <= float_of_int (r.rbins_x - 1)))
    || not (j >= 0.0 && j <= float_of_int (r.rbins_y - 1))
  then 0.0
  else
    r.rcounts.((int_of_float j * r.rbins_x) + int_of_float i)
    /. (r.rtotal *. r.rwx *. r.rwy)

let magic_rect = "selest-stored-rect v1"

let rect_to_string r =
  let (x_lo, x_hi), (y_lo, y_hi) = rect_domains r in
  let buf = Buffer.create (16 * Array.length r.rcounts) in
  Buffer.add_string buf (magic_rect ^ "\n");
  Buffer.add_string buf (Printf.sprintf "domain_x %.17g %.17g\n" x_lo x_hi);
  Buffer.add_string buf (Printf.sprintf "domain_y %.17g %.17g\n" y_lo y_hi);
  Buffer.add_string buf (Printf.sprintf "bins %d %d\n" r.rbins_x r.rbins_y);
  Buffer.add_string buf (Printf.sprintf "total %.17g\n" r.rtotal);
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g\n" v)) r.rcounts;
  Buffer.contents buf

(* Shared line-level helpers for the rect/join parsers: every parse is
   total — malformed input maps to [Error], never an exception. *)
let parse_float_pair who ~key line =
  match String.split_on_char ' ' (String.trim line) with
  | [ k; a; b ] when k = key -> (
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some x, Some y -> Ok (x, y)
    | _ -> Error (Printf.sprintf "%s: malformed %s line" who key))
  | _ -> Error (Printf.sprintf "%s: missing %s line" who key)

let parse_floats who rest =
  let values =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None else Some (float_of_string_opt line))
      rest
  in
  if List.exists (fun v -> v = None) values then
    Error (Printf.sprintf "%s: malformed value" who)
  else Ok (Array.of_list (List.filter_map Fun.id values))

let rect_of_string s =
  let who = "Stored.rect_of_string" in
  match String.split_on_char '\n' s with
  | magic :: dx :: dy :: bins_line :: total_line :: rest when String.trim magic = magic_rect
    -> (
    let ( let* ) = Result.bind in
    let* x_lo, x_hi = parse_float_pair who ~key:"domain_x" dx in
    let* y_lo, y_hi = parse_float_pair who ~key:"domain_y" dy in
    let* bins_x, bins_y =
      match String.split_on_char ' ' (String.trim bins_line) with
      | [ "bins"; a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some i, Some j when i > 0 && j > 0 -> Ok (i, j)
        | _ -> Error (who ^ ": malformed bins line"))
      | _ -> Error (who ^ ": missing bins line")
    in
    let* total =
      match String.split_on_char ' ' (String.trim total_line) with
      | [ "total"; v ] -> (
        match float_of_string_opt v with
        | Some t when t > 0.0 && Float.is_finite t -> Ok t
        | _ -> Error (who ^ ": malformed total line"))
      | _ -> Error (who ^ ": missing total line")
    in
    if not (Float.is_finite x_lo && Float.is_finite x_hi && x_lo < x_hi) then
      Error (who ^ ": malformed domain_x bounds")
    else if not (Float.is_finite y_lo && Float.is_finite y_hi && y_lo < y_hi) then
      Error (who ^ ": malformed domain_y bounds")
    else
      let* counts = parse_floats who rest in
      if Array.length counts <> bins_x * bins_y then
        Error
          (Printf.sprintf "%s: expected %d counts, found %d" who (bins_x * bins_y)
             (Array.length counts))
      else if Array.exists (fun v -> v < 0.0 || not (Float.is_finite v)) counts then
        Error (who ^ ": counts must be non-negative and finite")
      else
        Ok
          (rect_of_counts_exn who ~domain_x:(x_lo, x_hi) ~domain_y:(y_lo, y_hi) ~bins_x
             ~bins_y ~counts ~total))
  | _ -> Error (who ^ ": missing header")

(* ---------------- join summaries ---------------- *)

type join_pred = Join_eq | Join_lt | Join_le

let join_pred_to_string = function Join_eq -> "eq" | Join_lt -> "lt" | Join_le -> "le"

let join_pred_of_string = function
  | "eq" -> Ok Join_eq
  | "lt" -> Ok Join_lt
  | "le" -> Ok Join_le
  | s -> Error (Printf.sprintf "unknown join predicate %S (expected eq, lt or le)" s)

type join = {
  j_lo : float;
  j_hi : float; (* shared attribute domain *)
  j_n_r : int;
  j_n_s : int; (* relation sizes *)
  j_bounds_r : float array; (* strictly ascending, length buckets + 1 *)
  j_mass_r : float array; (* per-bucket probability mass, length buckets *)
  j_bounds_s : float array;
  j_mass_s : float array;
  j_sample_r : float array; (* retained build samples (sorted), for rebuilds *)
  j_sample_s : float array;
}

(* Equi-depth bucketing of a sorted sample: bucket boundaries at the
   k-quantile midpoints, then zero-width buckets merged so bounds are
   strictly ascending and per-bucket densities are defined. *)
let edh_of_sorted ~domain:(lo, hi) ~buckets sorted =
  let n = Array.length sorted in
  let k = Int.min buckets n in
  let bounds = ref [ lo ] and masses = ref [] in
  let prev_pos = ref 0 and prev_bound = ref lo in
  for i = 1 to k - 1 do
    let pos = i * n / k in
    if pos > !prev_pos then begin
      let b = 0.5 *. (sorted.(pos - 1) +. sorted.(pos)) in
      if b > !prev_bound && b < hi then begin
        bounds := b :: !bounds;
        masses := (float_of_int (pos - !prev_pos) /. float_of_int n) :: !masses;
        prev_pos := pos;
        prev_bound := b
      end
    end
  done;
  bounds := hi :: !bounds;
  masses := (float_of_int (n - !prev_pos) /. float_of_int n) :: !masses;
  (Array.of_list (List.rev !bounds), Array.of_list (List.rev !masses))

let join_of_samples ~domain:(lo, hi) ~buckets ~n_r ~n_s sample_r sample_s =
  if lo >= hi then invalid_arg "Stored.join_of_samples: empty domain";
  if buckets <= 0 then invalid_arg "Stored.join_of_samples: buckets must be positive";
  if n_r <= 0 || n_s <= 0 then
    invalid_arg "Stored.join_of_samples: relation sizes must be positive";
  if Array.length sample_r = 0 || Array.length sample_s = 0 then
    invalid_arg "Stored.join_of_samples: empty sample";
  let prep sample =
    if Array.exists (fun v -> not (Float.is_finite v)) sample then
      invalid_arg "Stored.join_of_samples: sample values must be finite";
    let s = Array.map (fun v -> Float.max lo (Float.min hi v)) sample in
    Array.sort Float.compare s;
    s
  in
  let sr = prep sample_r and ss = prep sample_s in
  let bounds_r, mass_r = edh_of_sorted ~domain:(lo, hi) ~buckets sr in
  let bounds_s, mass_s = edh_of_sorted ~domain:(lo, hi) ~buckets ss in
  {
    j_lo = lo;
    j_hi = hi;
    j_n_r = n_r;
    j_n_s = n_s;
    j_bounds_r = bounds_r;
    j_mass_r = mass_r;
    j_bounds_s = bounds_s;
    j_mass_s = mass_s;
    j_sample_r = sr;
    j_sample_s = ss;
  }

let join_domain j = (j.j_lo, j.j_hi)
let join_sizes j = (j.j_n_r, j.j_n_s)
let join_buckets j = (Array.length j.j_mass_r, Array.length j.j_mass_s)
let join_samples j = (j.j_sample_r, j.j_sample_s)

(* P(x < y) for x ~ U(a1, b1), y ~ U(a2, b2): integrate the uniform CDF of
   x over y's bucket.  With c1/c2 the clamp of [a1, b1] into [a2, b2],
   the integral splits into the ramp part and the saturated tail. *)
let prob_lt ~a1 ~b1 ~a2 ~b2 =
  if b1 <= a2 then 1.0
  else if b2 <= a1 then 0.0
  else begin
    let clamp v = Float.max a2 (Float.min b2 v) in
    let c1 = clamp a1 and c2 = clamp b1 in
    let ramp = (((c2 -. a1) *. (c2 -. a1)) -. ((c1 -. a1) *. (c1 -. a1)))
               /. (2.0 *. (b1 -. a1)) in
    (ramp +. (b2 -. c2)) /. (b2 -. a2)
  end

(* N_R N_S int f_R f_S: the density-product equi-join formula on the
   bucket pair grid (each integer value occupying a unit cell, as in
   Equijoin.from_densities). *)
let join_eq_size j =
  let kr = Array.length j.j_mass_r and ks = Array.length j.j_mass_s in
  let acc = ref 0.0 in
  for i = 0 to kr - 1 do
    let a1 = j.j_bounds_r.(i) and b1 = j.j_bounds_r.(i + 1) in
    let dr = j.j_mass_r.(i) /. (b1 -. a1) in
    if dr > 0.0 then
      for k = 0 to ks - 1 do
        let a2 = j.j_bounds_s.(k) and b2 = j.j_bounds_s.(k + 1) in
        let overlap = Float.min b1 b2 -. Float.max a1 a2 in
        if overlap > 0.0 then
          acc := !acc +. (dr *. (j.j_mass_s.(k) /. (b2 -. a2)) *. overlap)
      done
  done;
  float_of_int j.j_n_r *. float_of_int j.j_n_s *. !acc

(* The histogram-pair sweep for R.A < S.B: sum over bucket pairs of the
   mass product times the uniform-within-bucket P(x < y). *)
let join_lt_size j =
  let kr = Array.length j.j_mass_r and ks = Array.length j.j_mass_s in
  let acc = ref 0.0 in
  for i = 0 to kr - 1 do
    let a1 = j.j_bounds_r.(i) and b1 = j.j_bounds_r.(i + 1) in
    let mr = j.j_mass_r.(i) in
    if mr > 0.0 then
      for k = 0 to ks - 1 do
        let a2 = j.j_bounds_s.(k) and b2 = j.j_bounds_s.(k + 1) in
        let ms = j.j_mass_s.(k) in
        if ms > 0.0 then acc := !acc +. (mr *. ms *. prob_lt ~a1 ~b1 ~a2 ~b2)
      done
  done;
  float_of_int j.j_n_r *. float_of_int j.j_n_s *. !acc

let join_estimate j ~pred =
  match pred with
  | Join_eq -> join_eq_size j
  | Join_lt -> join_lt_size j
  | Join_le -> join_lt_size j +. join_eq_size j

let magic_join = "selest-stored-join v1"

let join_to_string j =
  let buf =
    Buffer.create
      (16 * (Array.length j.j_bounds_r + Array.length j.j_bounds_s
            + Array.length j.j_sample_r + Array.length j.j_sample_s))
  in
  Buffer.add_string buf (magic_join ^ "\n");
  Buffer.add_string buf (Printf.sprintf "domain %.17g %.17g\n" j.j_lo j.j_hi);
  Buffer.add_string buf (Printf.sprintf "sizes %d %d\n" j.j_n_r j.j_n_s);
  let section name values =
    Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Array.length values));
    Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g\n" v)) values
  in
  section "bounds_r" j.j_bounds_r;
  section "mass_r" j.j_mass_r;
  section "bounds_s" j.j_bounds_s;
  section "mass_s" j.j_mass_s;
  section "sample_r" j.j_sample_r;
  section "sample_s" j.j_sample_s;
  Buffer.contents buf

let join_of_string s =
  let who = "Stored.join_of_string" in
  match String.split_on_char '\n' s with
  | magic :: domain_line :: sizes_line :: rest when String.trim magic = magic_join -> (
    let ( let* ) = Result.bind in
    let* lo, hi = parse_float_pair who ~key:"domain" domain_line in
    let* n_r, n_s =
      match String.split_on_char ' ' (String.trim sizes_line) with
      | [ "sizes"; a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some r, Some s when r > 0 && s > 0 -> Ok (r, s)
        | _ -> Error (who ^ ": malformed sizes line"))
      | _ -> Error (who ^ ": missing sizes line")
    in
    if not (Float.is_finite lo && Float.is_finite hi && lo < hi) then
      Error (who ^ ": malformed domain bounds")
    else begin
      (* Each section is "name <count>" followed by that many values. *)
      let section name lines =
        match lines with
        | header :: rest -> (
          match String.split_on_char ' ' (String.trim header) with
          | [ n; c ] when n = name -> (
            match int_of_string_opt c with
            | Some count when count >= 0 ->
              let rec take acc k = function
                | rest when k = 0 -> Ok (List.rev acc, rest)
                | [] -> Error (Printf.sprintf "%s: truncated %s section" who name)
                | line :: rest -> (
                  match float_of_string_opt (String.trim line) with
                  | Some v -> take (v :: acc) (k - 1) rest
                  | None -> Error (Printf.sprintf "%s: malformed %s value" who name))
              in
              Result.map
                (fun (vs, rest) -> (Array.of_list vs, rest))
                (take [] count rest)
            | _ -> Error (Printf.sprintf "%s: malformed %s count" who name))
          | _ -> Error (Printf.sprintf "%s: missing %s section" who name))
        | [] -> Error (Printf.sprintf "%s: missing %s section" who name)
      in
      let* bounds_r, rest = section "bounds_r" rest in
      let* mass_r, rest = section "mass_r" rest in
      let* bounds_s, rest = section "bounds_s" rest in
      let* mass_s, rest = section "mass_s" rest in
      let* sample_r, rest = section "sample_r" rest in
      let* sample_s, rest = section "sample_s" rest in
      let* () =
        if List.exists (fun l -> String.trim l <> "") rest then
          Error (who ^ ": trailing garbage after sections")
        else Ok ()
      in
      let ascending a =
        let ok = ref (Array.length a >= 2) in
        for i = 0 to Array.length a - 2 do
          if not (a.(i) < a.(i + 1)) then ok := false
        done;
        !ok && Array.for_all Float.is_finite a
      in
      let valid_hist bounds mass =
        ascending bounds
        && Array.length mass = Array.length bounds - 1
        && Array.for_all (fun v -> v >= 0.0 && Float.is_finite v) mass
        && bounds.(0) = lo
        && bounds.(Array.length bounds - 1) = hi
      in
      if not (valid_hist bounds_r mass_r) then Error (who ^ ": malformed R histogram")
      else if not (valid_hist bounds_s mass_s) then Error (who ^ ": malformed S histogram")
      else if
        Array.length sample_r = 0 || Array.length sample_s = 0
        || not (Array.for_all Float.is_finite sample_r)
        || not (Array.for_all Float.is_finite sample_s)
      then Error (who ^ ": malformed samples")
      else
        Ok
          {
            j_lo = lo;
            j_hi = hi;
            j_n_r = n_r;
            j_n_s = n_s;
            j_bounds_r = bounds_r;
            j_mass_r = mass_r;
            j_bounds_s = bounds_s;
            j_mass_s = mass_s;
            j_sample_r = sample_r;
            j_sample_s = sample_s;
          }
    end)
  | _ -> Error (who ^ ": missing header")

(* ---------------- kind-dispatched summaries ---------------- *)

type kind = Range_kind | Rect_kind | Join_kind

let kind_name = function
  | Range_kind -> "range"
  | Rect_kind -> "rect"
  | Join_kind -> "join"

let kind_of_name = function
  | "range" -> Ok Range_kind
  | "rect" -> Ok Rect_kind
  | "join" -> Ok Join_kind
  | s -> Error (Printf.sprintf "unknown summary kind %S (expected range, rect or join)" s)

type any = Range of t | Rect of rect | Join of join

let any_kind = function Range _ -> Range_kind | Rect _ -> Rect_kind | Join _ -> Join_kind

let any_cells = function
  | Range t -> cells t
  | Rect r -> r.rbins_x * r.rbins_y
  | Join j -> Array.length j.j_mass_r + Array.length j.j_mass_s

let any_domain = function
  | Range t -> domain t
  | Rect r -> fst (rect_domains r)
  | Join j -> join_domain j

let any_to_string = function
  | Range t -> to_string t
  | Rect r -> rect_to_string r
  | Join j -> join_to_string j

(* Compact spec syntax for the non-range kinds, mirroring
   [Estimator.spec_of_string]'s role for range entries: the catalog
   stores the spec string with each entry and re-parses it on rebuild. *)
let rect_spec_of_string s =
  match String.index_opt s ':' with
  | None when s = "hist2d" -> Ok (32, 32)
  | Some i when String.sub s 0 i = "hist2d" -> (
    let opt = String.sub s (i + 1) (String.length s - i - 1) in
    let parse_bins b =
      match int_of_string_opt b with Some k when k >= 1 -> Some k | _ -> None
    in
    match String.split_on_char 'x' opt with
    | [ b ] -> (
      match parse_bins b with
      | Some k -> Ok (k, k)
      | None -> Error (Printf.sprintf "malformed rect spec %S" s))
    | [ bx; by ] -> (
      match (parse_bins bx, parse_bins by) with
      | Some kx, Some ky -> Ok (kx, ky)
      | _ -> Error (Printf.sprintf "malformed rect spec %S" s))
    | _ -> Error (Printf.sprintf "malformed rect spec %S" s))
  | _ -> Error (Printf.sprintf "unknown rect spec %S (expected hist2d[:BX[xBY]])" s)

let join_spec_of_string s =
  match String.index_opt s ':' with
  | None when s = "edh" -> Ok 64
  | Some i when String.sub s 0 i = "edh" -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some k when k >= 1 -> Ok k
    | _ -> Error (Printf.sprintf "malformed join spec %S" s))
  | _ -> Error (Printf.sprintf "unknown join spec %S (expected edh[:BUCKETS])" s)

(* Dispatch on the header line; each sub-parser re-checks it, so a
   mislabeled payload still maps to Error. *)
let any_of_string s =
  let header =
    match String.index_opt s '\n' with
    | Some i -> String.trim (String.sub s 0 i)
    | None -> String.trim s
  in
  if header = magic_range then Result.map (fun t -> Range t) (of_string s)
  else if header = magic_rect then Result.map (fun r -> Rect r) (rect_of_string s)
  else if header = magic_join then Result.map (fun j -> Join j) (join_of_string s)
  else Error "Stored.any_of_string: missing header"
