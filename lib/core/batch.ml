(* Batch (structure-of-arrays) evaluation of fitted estimators.

   A plan flattens the fitted structure into plain [float array]s plus
   unboxed scalars, and each family evaluates a whole query batch inside
   one function body.  Everything the per-query loops touch is either an
   array element or an [@inline always] helper, so no float is boxed and
   nothing is allocated per query — this toolchain has no flambda, and a
   single non-inlined call taking or returning a float would reintroduce
   one minor-heap box per evaluation (the very cost the scalar closure
   path pays; see docs/PERFORMANCE.md).

   Bit-identity discipline: every evaluator below replays the scalar
   arithmetic of its estimator in the same operation order over the same
   (shared or copied) float values, and shares the scalar path's own
   primitives (Kernel.cdf, Boundary.left, Integrate.gl10_nodes, ...) by
   forced inlining rather than by duplication.  The single documented
   exception is the Gaussian kernel, whose transcendental primitive is
   replaced by a Kernels.Lut table (tolerance documented there and in
   docs/PERFORMANCE.md, enforced by test/test_batch.ml). *)

module A = Stats.Array_util
module K = Kernels.Kernel
module B = Kernels.Boundary

(* A fitted kernel estimator, flattened.  [policy] mirrors
   Kde.Estimator.boundary_policy (0 none / 1 reflection / 2 boundary
   kernels); LUT fields are live only when [use_lut]. *)
type kde_plan = {
  kp_kernel : K.t;
  kp_policy : int;
  kp_h : float;
  kp_lo : float;
  kp_hi : float;
  kp_rh : float; (* effective_radius * h, the kernel overlap radius *)
  kp_n : float; (* float_of_int (Array.length kp_xs) *)
  kp_xs : float array; (* sorted samples (shared with the estimator) *)
  kp_rl : float array; (* left reflection array (Reflection policy) *)
  kp_rr : float array; (* right reflection array *)
  kp_use_lut : bool;
  kp_lut : float array; (* Gaussian cdf table *)
  kp_lut_lo : float;
  kp_lut_inv_step : float;
  kp_lut_last : int;
}

type hybrid_plan = {
  hp_lo : float array; (* per-bin left edges *)
  hp_hi : float array;
  hp_weight : float array;
  hp_kernel : bool array; (* true: kernel bin, false: uniform fallback *)
  hp_kde : kde_plan array; (* aligned with bins; dummy plan for uniform bins *)
}

type plan =
  | P_sampling of { xs : float array; n_f : float (* sample count as float *) }
  | P_hist of { edges : float array; counts : float array; total : float; k : int }
  | P_ash of {
      edges : float array; (* all shifts' edge arrays, concatenated *)
      counts : float array; (* all shifts' count arrays, concatenated *)
      eoff : int array; (* m + 1 prefix offsets into [edges] *)
      coff : int array; (* m + 1 prefix offsets into [counts] *)
      totals : float array; (* per-shift total counts *)
      m : int;
      m_f : float;
    }
  | P_fp of { kx : float array; ky : float array }
  | P_kde of kde_plan
  | P_hybrid of hybrid_plan

type t = { plan_spec : Estimator.spec; plan : plan }

let spec t = t.plan_spec

(* --- plan compilation --- *)

let dummy_kde =
  {
    kp_kernel = K.Epanechnikov;
    kp_policy = 0;
    kp_h = 1.0;
    kp_lo = 0.0;
    kp_hi = 1.0;
    kp_rh = 1.0;
    kp_n = 1.0;
    kp_xs = [| 0.5 |];
    kp_rl = [||];
    kp_rr = [||];
    kp_use_lut = false;
    kp_lut = [||];
    kp_lut_lo = 0.0;
    kp_lut_inv_step = 0.0;
    kp_lut_last = 0;
  }

(* One shared Gaussian table: plans are compiled per estimator but the
   Gaussian primitive is the same for all of them. *)
let gaussian_lut = lazy (Kernels.Lut.create K.Gaussian)

let kde_plan_of est =
  let kernel = Kde.Estimator.kernel est in
  let policy =
    match Kde.Estimator.boundary est with
    | Kde.Estimator.No_treatment -> 0
    | Kde.Estimator.Reflection -> 1
    | Kde.Estimator.Boundary_kernels -> 2
  in
  let h = Kde.Estimator.bandwidth est in
  let lo, hi = Kde.Estimator.domain est in
  let xs = Kde.Estimator.samples est in
  let rl, rr = Kde.Estimator.reflections est in
  let use_lut = kernel = K.Gaussian in
  let lut_table, lut_lo, lut_inv_step, lut_last =
    if use_lut then begin
      let lut = Lazy.force gaussian_lut in
      ( Kernels.Lut.table lut,
        Kernels.Lut.lo lut,
        Kernels.Lut.inv_step lut,
        Kernels.Lut.size lut - 2 )
    end
    else ([||], 0.0, 0.0, 0)
  in
  {
    kp_kernel = kernel;
    kp_policy = policy;
    kp_h = h;
    kp_lo = lo;
    kp_hi = hi;
    (* Same expression the scalar base_sum evaluates per call. *)
    kp_rh = K.effective_radius kernel *. h;
    kp_n = float_of_int (Array.length xs);
    kp_xs = xs;
    kp_rl = rl;
    kp_rr = rr;
    kp_use_lut = use_lut;
    kp_lut = lut_table;
    kp_lut_lo = lut_lo;
    kp_lut_inv_step = lut_inv_step;
    kp_lut_last = lut_last;
  }

let hist_plan_of h =
  P_hist
    {
      edges = Histograms.Histogram.edges h;
      counts = Histograms.Histogram.counts h;
      total = Histograms.Histogram.total_count h;
      k = Histograms.Histogram.bins h;
    }

let ash_plan_of ash =
  let hs = Histograms.Ash.components ash in
  let m = Array.length hs in
  let eoff = Array.make (m + 1) 0 in
  let coff = Array.make (m + 1) 0 in
  for j = 0 to m - 1 do
    eoff.(j + 1) <- eoff.(j) + Array.length (Histograms.Histogram.edges hs.(j));
    coff.(j + 1) <- coff.(j) + Histograms.Histogram.bins hs.(j)
  done;
  let edges = Array.make (Int.max 1 eoff.(m)) 0.0 in
  let counts = Array.make (Int.max 1 coff.(m)) 0.0 in
  let totals = Array.make m 0.0 in
  for j = 0 to m - 1 do
    let e = Histograms.Histogram.edges hs.(j) in
    let c = Histograms.Histogram.counts hs.(j) in
    Array.blit e 0 edges eoff.(j) (Array.length e);
    Array.blit c 0 counts coff.(j) (Array.length c);
    totals.(j) <- Histograms.Histogram.total_count hs.(j)
  done;
  P_ash { edges; counts; eoff; coff; totals; m; m_f = float_of_int m }

let hybrid_plan_of hy =
  let views = Hybrid.Partitioned.bin_views hy in
  let nb = Array.length views in
  let hp_lo = Array.make (Int.max 1 nb) 0.0 in
  let hp_hi = Array.make (Int.max 1 nb) 0.0 in
  let hp_weight = Array.make (Int.max 1 nb) 0.0 in
  let hp_kernel = Array.make (Int.max 1 nb) false in
  let hp_kde = Array.make (Int.max 1 nb) dummy_kde in
  Array.iteri
    (fun i (v : Hybrid.Partitioned.bin_view) ->
      hp_lo.(i) <- v.Hybrid.Partitioned.bv_lo;
      hp_hi.(i) <- v.Hybrid.Partitioned.bv_hi;
      hp_weight.(i) <- v.Hybrid.Partitioned.bv_weight;
      match v.Hybrid.Partitioned.bv_kde with
      | Some est ->
        hp_kernel.(i) <- true;
        hp_kde.(i) <- kde_plan_of est
      | None -> ())
    views;
  P_hybrid { hp_lo; hp_hi; hp_weight; hp_kernel; hp_kde }

let compile est =
  let plan =
    match Estimator.repr est with
    | Estimator.Sampling_repr xs ->
      P_sampling { xs; n_f = float_of_int (Array.length xs) }
    | Estimator.Histogram_repr h -> hist_plan_of h
    | Estimator.Ash_repr ash -> ash_plan_of ash
    | Estimator.Kde_repr k -> P_kde (kde_plan_of k)
    | Estimator.Hybrid_repr hy -> hybrid_plan_of hy
    | Estimator.Frequency_polygon_repr fp ->
      let kx, ky = Histograms.Frequency_polygon.knots fp in
      P_fp { kx; ky }
  in
  { plan_spec = Estimator.spec est; plan }

(* --- inlined primitives --- *)

(* Kernel primitive dispatch: exact closed form for the compact kernels
   (Kernel.cdf inlined), table interpolation for the Gaussian. *)
let[@inline always] plan_cdf p t =
  if p.kp_use_lut then begin
    if t <= p.kp_lut_lo then 0.0
    else begin
      let u = (t -. p.kp_lut_lo) *. p.kp_lut_inv_step in
      (* Clamped in float space before converting, as in Lut.cdf: for
         u >= 2^62 the int conversion is unspecified and can go negative,
         turning the unsafe table read out of bounds. *)
      if u >= float_of_int (p.kp_lut_last + 1) then 1.0
      else begin
        let i = int_of_float u in
        let y0 = Array.unsafe_get p.kp_lut i in
        y0 +. ((u -. float_of_int i) *. (Array.unsafe_get p.kp_lut (i + 1) -. y0))
      end
    end
  end
  else K.cdf p.kp_kernel t

(* Replay of Kde.Estimator.base_sum over one sorted array: a partial loop
   over the samples whose kernel straddles an endpoint, plus a counted
   middle block whose kernels cover [a, b] entirely. *)
let[@inline always] kde_partial_sum p xs a b acc i0 i1 =
  let h = p.kp_h in
  let s = ref acc in
  for i = i0 to i1 - 1 do
    let x = Array.unsafe_get xs i in
    s := !s +. (plan_cdf p ((b -. x) /. h) -. plan_cdf p ((a -. x) /. h))
  done;
  !s

let[@inline always] kde_base_sum p xs a b =
  let rh = p.kp_rh in
  let i0 = A.branchless_lower_bound xs (a -. rh) in
  let i1 = A.branchless_upper_bound xs (b +. rh) in
  if a +. rh <= b -. rh then begin
    let j0 = A.branchless_lower_bound xs (a +. rh) in
    let j1 = A.branchless_upper_bound xs (b -. rh) in
    let full = float_of_int (Int.max 0 (j1 - j0)) in
    kde_partial_sum p xs a b (kde_partial_sum p xs a b full i0 j0) j1 i1
  end
  else kde_partial_sum p xs a b 0.0 i0 i1

(* Replay of Kde.Estimator.boundary_kernel_density (Simonoff-Dong kernels
   within h of a boundary, the plain kernel elsewhere). *)
let[@inline always] kde_bk_density p x =
  let h = p.kp_h in
  let xs = p.kp_xs in
  let n = p.kp_n in
  if x < p.kp_lo +. h then begin
    let q = (x -. p.kp_lo) /. h in
    let i0 = A.branchless_lower_bound xs (x -. (q *. h)) in
    let i1 = A.branchless_upper_bound xs (x +. h) in
    let s = ref 0.0 in
    for i = i0 to i1 - 1 do
      s := !s +. B.left ~u:((x -. Array.unsafe_get xs i) /. h) ~q
    done;
    !s /. (n *. h)
  end
  else if x > p.kp_hi -. h then begin
    let q = (p.kp_hi -. x) /. h in
    let i0 = A.branchless_lower_bound xs (x -. h) in
    let i1 = A.branchless_upper_bound xs (x +. (q *. h)) in
    let s = ref 0.0 in
    for i = i0 to i1 - 1 do
      s := !s +. B.right ~u:((x -. Array.unsafe_get xs i) /. h) ~q
    done;
    !s /. (n *. h)
  end
  else begin
    let rh = p.kp_rh in
    let i0 = A.branchless_lower_bound xs (x -. rh) in
    let i1 = A.branchless_upper_bound xs (x +. rh) in
    let s = ref 0.0 in
    for i = i0 to i1 - 1 do
      s := !s +. K.eval p.kp_kernel ((x -. Array.unsafe_get xs i) /. h)
    done;
    !s /. (n *. h)
  end

(* Replay of boundary_kernel_selectivity's piece_numeric: one 10-point
   Gauss-Legendre panel per boundary strip, same nodes, same summation
   order as Integrate.gauss_legendre_10. *)
let[@inline always] kde_bk_strip p lo hi =
  if hi -. lo <= 0.0 then 0.0
  else begin
    let nodes = Stats.Integrate.gl10_nodes and weights = Stats.Integrate.gl10_weights in
    let mid = 0.5 *. (lo +. hi) and half = 0.5 *. (hi -. lo) in
    let acc = ref 0.0 in
    for i = 0 to 4 do
      let dx = half *. Array.unsafe_get nodes i in
      acc :=
        !acc
        +. (Array.unsafe_get weights i
            *. (kde_bk_density p (mid -. dx) +. kde_bk_density p (mid +. dx)))
    done;
    !acc *. half
  end

let[@inline always] kde_bk_selectivity p a b =
  let h = p.kp_h in
  let left_edge = p.kp_lo +. h and right_edge = p.kp_hi -. h in
  let mid_lo = Float.max a left_edge and mid_hi = Float.min b right_edge in
  let mid = if mid_lo < mid_hi then kde_base_sum p p.kp_xs mid_lo mid_hi /. p.kp_n else 0.0 in
  let left = if a < left_edge then kde_bk_strip p a (Float.min b left_edge) else 0.0 in
  let right = if b > right_edge then kde_bk_strip p (Float.max a right_edge) b else 0.0 in
  left +. mid +. right

(* Replay of Kde.Estimator.selectivity (clamp to domain, policy dispatch,
   clamp to [0, 1]). *)
let[@inline always] kde_selectivity p a b =
  if a > b then 0.0
  else begin
    let a = Float.max p.kp_lo a and b = Float.min p.kp_hi b in
    if a > b then 0.0
    else begin
      let v =
        if p.kp_policy = 0 then kde_base_sum p p.kp_xs a b /. p.kp_n
        else if p.kp_policy = 1 then
          (kde_base_sum p p.kp_xs a b +. kde_base_sum p p.kp_rl a b
          +. kde_base_sum p p.kp_rr a b)
          /. p.kp_n
        else kde_bk_selectivity p a b
      in
      Float.max 0.0 (Float.min 1.0 v)
    end
  end

(* Replay of Histogram.selectivity over a slice of the concatenated SoA
   layout ([epos]: first edge, [cpos]: first count, [k]: bins). *)
let[@inline always] hist_selectivity_slice edges counts epos cpos k total a b =
  if a > b then 0.0
  else begin
    let first =
      Int.max 0 (A.branchless_upper_bound_from edges ~pos:epos ~len:(k + 1) a - epos - 1)
    in
    let s = ref 0.0 in
    let i = ref first in
    while !i < k && Array.unsafe_get edges (epos + !i) <= b do
      let lo = Array.unsafe_get edges (epos + !i)
      and hi = Array.unsafe_get edges (epos + !i + 1) in
      let overlap = Float.min b hi -. Float.max a lo in
      if overlap > 0.0 then
        s := !s +. (Array.unsafe_get counts (cpos + !i) /. (hi -. lo) *. overlap);
      incr i
    done;
    Float.max 0.0 (Float.min 1.0 (!s /. total))
  end

(* --- batch evaluation --- *)

let estimate_into t ~n ~a ~b ~out =
  if n < 0 then invalid_arg "Batch.estimate_into: negative batch size";
  if Array.length a < n || Array.length b < n then
    invalid_arg "Batch.estimate_into: query arrays shorter than n";
  if Array.length out < n then invalid_arg "Batch.estimate_into: out shorter than n";
  match t.plan with
  | P_sampling { xs; n_f = nf } ->
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      let v =
        if qa > qb then 0.0
        else begin
          let c = A.branchless_upper_bound xs qb - A.branchless_lower_bound xs qa in
          float_of_int c /. nf
        end
      in
      Array.unsafe_set out qi v
    done
  | P_hist { edges; counts; total; k } ->
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      Array.unsafe_set out qi (hist_selectivity_slice edges counts 0 0 k total qa qb)
    done
  | P_ash { edges; counts; eoff; coff; totals; m; m_f } ->
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      let s = ref 0.0 in
      for j = 0 to m - 1 do
        let epos = Array.unsafe_get eoff j and cpos = Array.unsafe_get coff j in
        let k = Array.unsafe_get coff (j + 1) - cpos in
        s :=
          !s
          +. hist_selectivity_slice edges counts epos cpos k (Array.unsafe_get totals j) qa
               qb
      done;
      Array.unsafe_set out qi (!s /. m_f)
    done
  | P_fp { kx; ky } ->
    let m = Array.length kx in
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      let v =
        if qa > qb then 0.0
        else begin
          let first = Int.max 0 (A.branchless_upper_bound kx qa - 1) in
          let acc = ref 0.0 in
          let j = ref first in
          while !j < m - 1 && Array.unsafe_get kx !j < qb do
            (* segment_integral: trapezoid of the linear segment clipped to
               [qa, qb], same expressions as the scalar path. *)
            let x0 = Array.unsafe_get kx !j and x1 = Array.unsafe_get kx (!j + 1) in
            let lo = Float.max qa x0 and hi = Float.min qb x1 in
            if lo < hi then begin
              let y0 = Array.unsafe_get ky !j and y1 = Array.unsafe_get ky (!j + 1) in
              let y_lo = y0 +. ((y1 -. y0) *. (lo -. x0) /. (x1 -. x0)) in
              let y_hi = y0 +. ((y1 -. y0) *. (hi -. x0) /. (x1 -. x0)) in
              acc := !acc +. (0.5 *. (y_lo +. y_hi) *. (hi -. lo))
            end;
            incr j
          done;
          Float.max 0.0 (Float.min 1.0 !acc)
        end
      in
      Array.unsafe_set out qi v
    done
  | P_kde p ->
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      Array.unsafe_set out qi (kde_selectivity p qa qb)
    done
  | P_hybrid { hp_lo; hp_hi; hp_weight; hp_kernel; hp_kde } ->
    let nb = Array.length hp_lo in
    for qi = 0 to n - 1 do
      let qa = Array.unsafe_get a qi and qb = Array.unsafe_get b qi in
      let v =
        if qa > qb then 0.0
        else begin
          let s = ref 0.0 in
          for bi = 0 to nb - 1 do
            (* bin_selectivity: clamp the query to the bin, then the bin's
               kernel estimator or the uniform-within-bin rule. *)
            let blo = Array.unsafe_get hp_lo bi and bhi = Array.unsafe_get hp_hi bi in
            let ba = Float.max qa blo and bb = Float.min qb bhi in
            if ba < bb then begin
              let w = Array.unsafe_get hp_weight bi in
              if Array.unsafe_get hp_kernel bi then
                s := !s +. (w *. kde_selectivity (Array.unsafe_get hp_kde bi) ba bb)
              else s := !s +. (w *. ((bb -. ba) /. (bhi -. blo)))
            end
          done;
          Float.max 0.0 (Float.min 1.0 !s)
        end
      in
      Array.unsafe_set out qi v
    done

let estimate t ~a ~b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Batch.estimate: query arrays differ in length";
  let out = Array.make (Int.max 1 n) 0.0 in
  estimate_into t ~n ~a ~b ~out;
  if n = Array.length out then out else Array.sub out 0 n
