(** Statistics maintenance: when to re-ANALYZE.

    A fitted estimator describes the relation at sampling time; inserts and
    workload drift silently invalidate it.  This module wraps an estimator
    with the two standard staleness triggers production systems use:

    - {b volume}: re-analyze after the relation grows (or churns) by a
      configurable fraction of the size it had when the statistics were
      collected;
    - {b feedback}: re-analyze when the recent observed relative error of
      the estimator (from completed queries) exceeds a threshold.

    The wrapper never resamples by itself — the caller owns data access —
    it only says {e when}, and rebuilds from the fresh sample it is
    handed. *)

type t

type reason =
  | Insert_volume  (** the relation changed by more than the threshold *)
  | Feedback_error  (** recent observed errors exceed the threshold *)

val create :
  ?refresh_after_change:float ->
  ?max_feedback_mre:float ->
  ?feedback_window:int ->
  spec:Estimator.spec ->
  domain:float * float ->
  sample:float array ->
  n_records:int ->
  unit ->
  t
(** [create ~spec ~domain ~sample ~n_records ()] builds the initial
    estimator.  [refresh_after_change] is the changed-record fraction
    triggering refresh (default 0.2), [max_feedback_mre] the mean relative
    error over the last [feedback_window] (default 50) observations that
    triggers refresh (default 0.5).
    @raise Invalid_argument on non-positive thresholds, window or
    [n_records], or an empty sample. *)

val estimator : t -> Estimator.t
(** The currently fitted estimator. *)

val n_records : t -> int
(** Relation size as of the last refresh plus recorded inserts — what
    {!estimate_count} should scale by. *)

val estimate_count : t -> a:float -> b:float -> float
(** Estimated result size of [Q(a,b)] against the current record count. *)

val record_inserts : t -> int -> unit
(** Tell the wrapper the relation received (or lost, negative) records.
    @raise Invalid_argument if the resulting size would be negative. *)

val record_feedback : t -> a:float -> b:float -> actual_count:int -> unit
(** Report a completed query's true result size.
    @raise Invalid_argument if [actual_count < 0]. *)

val changed_count : t -> int
(** Records changed (inserted plus deleted) since the last refresh — the
    raw update count behind the volume trigger.  Serving layers (the
    catalog) read it to mirror this wrapper's staleness into their own
    rebuild policy; see [Catalog.Service.sync_maintenance]. *)

val needs_refresh : t -> reason option
(** Whether a trigger has fired (volume checked first). *)

val refresh : t -> sample:float array -> n_records:int -> unit
(** Rebuild from a fresh sample and reset both triggers. *)

val refresh_count : t -> int
(** Number of refreshes performed (0 after {!create}). *)
