type marginal = a:float -> b:float -> float

let selectivity mx my ~x_lo ~x_hi ~y_lo ~y_hi =
  (* Canonicalize before splitting into marginals, so the independence
     estimator answers the same closed rectangle as the 2-D estimators
     it approximates (degenerate bounds become the unit cell instead of
     a zero-measure range each marginal treats differently). *)
  match Selest.Stored.canonical_rect ~x_lo ~x_hi ~y_lo ~y_hi with
  | None -> 0.0
  | Some (x_lo, x_hi, y_lo, y_hi) ->
    let v = mx ~a:x_lo ~b:x_hi *. my ~a:y_lo ~b:y_hi in
    Float.max 0.0 (Float.min 1.0 v)

let of_samples ?(spec = Selest.Estimator.kernel_defaults) ~domain_x ~domain_y points ~x_lo
    ~x_hi ~y_lo ~y_hi =
  let ex = Selest.Estimator.build spec ~domain:domain_x (Array.map fst points) in
  let ey = Selest.Estimator.build spec ~domain:domain_y (Array.map snd points) in
  selectivity
    (fun ~a ~b -> Selest.Estimator.selectivity ex ~a ~b)
    (fun ~a ~b -> Selest.Estimator.selectivity ey ~a ~b)
    ~x_lo ~x_hi ~y_lo ~y_hi
