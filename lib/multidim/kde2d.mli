(** Two-dimensional kernel selectivity estimation (the paper's future-work
    item 1).

    The estimator uses a product kernel [K(u) K(v)] with per-dimension
    bandwidths.  For rectangle queries the selectivity factorizes per
    sample, so formula (6) generalizes directly:

    {v sigma(Q) = 1/n * sum_i DX_i * DY_i v}

    where [DX_i = F((bx - X_i)/hx) - F((ax - X_i)/hx)] and [DY_i]
    likewise.  Boundary bias is treated by reflection, applied per
    dimension — for product kernels that is exactly the nine-image
    two-dimensional reflection. *)

type t

val create :
  ?kernel:Kernels.Kernel.t ->
  ?reflect:bool ->
  domain_x:float * float ->
  domain_y:float * float ->
  hx:float ->
  hy:float ->
  (float * float) array ->
  t
(** [create ~domain_x ~domain_y ~hx ~hy points] builds the estimator
    ([kernel] defaults to Epanechnikov, [reflect] to [true]).
    @raise Invalid_argument on empty sample, empty domains or non-positive
    bandwidths. *)

val bandwidths : t -> float * float
(** The per-axis bandwidths [(hx, hy)]. *)

val sample_size : t -> int
(** Number of sample points held by the estimator. *)

val selectivity :
  t -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Estimated probability of the rectangle, clamped to [[0, 1]]. *)

val density : t -> float -> float -> float
(** [density t x y] is the estimated joint density, 0 outside the domain. *)

val normal_scale_bandwidths :
  kernel:Kernels.Kernel.t -> (float * float) array -> float * float
(** The two-dimensional normal-reference rule
    [h_j = delta0(K)/delta0(gauss) * sigma_j * n^(-1/6)] (Scott [11],
    rescaled to the target kernel): the 2-D analog of the paper's
    normal-scale rule, with the robust per-axis scale estimate.
    @raise Invalid_argument on fewer than two samples. *)

val plug_in_bandwidths :
  ?iterations:int ->
  kernel:Kernels.Kernel.t ->
  (float * float) array ->
  float * float
(** Per-axis plug-in bandwidths: the paper's Section 4.3 iteration applied
    to each marginal sample, with the exponent adjusted from the 1-D
    [n^(-1/5)] to the 2-D [n^(-1/6)] rate (the product-kernel AMISE's
    bandwidth order).  Like its 1-D counterpart this adapts to clustered
    data where the normal-reference rule badly oversmooths.
    @raise Invalid_argument on fewer than two samples or
    [iterations < 0]. *)
