(* The 2-D grid histogram is a thin wrapper over the core's servable
   summary kind: build, query and density all delegate to
   [Selest.Stored.rect], which is what makes a catalog-served rectangle
   estimate bit-identical to the direct library call. *)

type t = Selest.Stored.rect

let build ~domain_x ~domain_y ~bins_x ~bins_y points =
  try Selest.Stored.rect_of_points ~domain_x ~domain_y ~bins_x ~bins_y points
  with Invalid_argument msg ->
    (* Keep the historical error prefix for callers matching on it. *)
    invalid_arg
      (Printf.sprintf "Hist2d.build: %s"
         (match String.index_opt msg ':' with
         | Some i -> String.trim (String.sub msg (i + 1) (String.length msg - i - 1))
         | None -> msg))

let bins = Selest.Stored.rect_bins
let selectivity = Selest.Stored.rect_selectivity
let density = Selest.Stored.rect_density
let to_stored t = t
let of_stored r = r

let sampling_selectivity points ~x_lo ~x_hi ~y_lo ~y_hi =
  let n = Array.length points in
  if n = 0 then invalid_arg "Hist2d.sampling_selectivity: empty sample";
  (* Same closed-rectangle semantics as every other 2-D estimator: count
     the integer points of the canonical rectangle (boundaries
     inclusive), so a degenerate [a, a] query agrees with the grid and
     kernel estimators instead of silently being its own case. *)
  match Selest.Stored.canonical_rect ~x_lo ~x_hi ~y_lo ~y_hi with
  | None -> 0.0
  | Some (x_lo, x_hi, y_lo, y_hi) ->
    let inside = ref 0 in
    Array.iter
      (fun (x, y) ->
        if x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi then incr inside)
      points;
    float_of_int !inside /. float_of_int n
