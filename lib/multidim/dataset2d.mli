(** Two-dimensional integer-domain datasets.

    The paper's first future-work item is multidimensional kernel
    estimation for multidimensional range queries; its own real data (TIGER
    line endpoints) is inherently two-dimensional — [arap1]/[arap2] are the
    two coordinates of the same points.  This module provides the
    two-dimensional substrate: point sets over a pair of integer domains
    with an exact rectangle-count oracle and sampling. *)

type t

val create : name:string -> bits_x:int -> bits_y:int -> (int * int) array -> t
(** [create ~name ~bits_x ~bits_y points] validates every coordinate
    against its domain and copies the input.
    @raise Invalid_argument on an empty array, bits outside [[1, 30]], or
    out-of-domain coordinates. *)

val name : t -> string
(** The dataset's display name. *)

val bits_x : t -> int
(** Domain parameter [p] of the first coordinate ([0 .. 2^p - 1]). *)

val bits_y : t -> int
(** Domain parameter [p] of the second coordinate. *)

val size : t -> int
(** Number of points. *)

val points : t -> (int * int) array
(** Shared storage: do not mutate. *)

val xs : t -> int array
(** First coordinates, in insertion order (fresh array). *)

val ys : t -> int array
(** Second coordinates, in insertion order (fresh array). *)

val exact_count :
  t -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> int
(** Exact number of points in the closed rectangle — the ground truth for
    two-dimensional range queries [a_x <= X <= b_x AND a_y <= Y <= b_y]. *)

val exact_selectivity :
  t -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** {!exact_count} divided by {!size}. *)

val sample_without_replacement :
  t -> Prng.Xoshiro256pp.t -> n:int -> (float * float) array
(** A uniform sample of points, as float pairs for the estimators.
    @raise Invalid_argument if [n <= 0 || n > size t]. *)

val describe : t -> string
(** One-line human-readable summary (name, domain bits, point count). *)
