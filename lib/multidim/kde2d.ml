module K = Kernels.Kernel

type t = {
  kernel : K.t;
  reflect : bool;
  dom_x : float * float;
  dom_y : float * float;
  hx : float;
  hy : float;
  pts_x : float array;
  pts_y : float array;
}

let create ?(kernel = K.Epanechnikov) ?(reflect = true) ~domain_x ~domain_y ~hx ~hy points =
  let check_domain (lo, hi) = if lo >= hi then invalid_arg "Kde2d.create: empty domain" in
  check_domain domain_x;
  check_domain domain_y;
  if hx <= 0.0 || hy <= 0.0 || not (Float.is_finite hx && Float.is_finite hy) then
    invalid_arg "Kde2d.create: bandwidths must be positive and finite";
  if Array.length points = 0 then invalid_arg "Kde2d.create: empty sample";
  let clamp (lo, hi) v = Float.max lo (Float.min hi v) in
  {
    kernel;
    reflect;
    dom_x = domain_x;
    dom_y = domain_y;
    hx;
    hy;
    pts_x = Array.map (fun (x, _) -> clamp domain_x x) points;
    pts_y = Array.map (fun (_, y) -> clamp domain_y y) points;
  }

let bandwidths t = (t.hx, t.hy)
let sample_size t = Array.length t.pts_x

(* Per-dimension kernel mass of sample coordinate [c] over [lo, hi], with
   optional reflection at the domain edges [dlo]/[dhi]. *)
let axis_mass t ~h ~dlo ~dhi lo hi c =
  let cdf = K.cdf t.kernel in
  let mass c = cdf ((hi -. c) /. h) -. cdf ((lo -. c) /. h) in
  if not t.reflect then mass c
  else begin
    let rh = K.effective_radius t.kernel *. h in
    let refl_lo = if c -. dlo <= rh then mass ((2.0 *. dlo) -. c) else 0.0 in
    let refl_hi = if dhi -. c <= rh then mass ((2.0 *. dhi) -. c) else 0.0 in
    mass c +. refl_lo +. refl_hi
  end

let selectivity t ~x_lo ~x_hi ~y_lo ~y_hi =
  (* Shared closed-rectangle semantics: evaluate the canonical unit-cell
     union, so degenerate bounds agree with the grid histogram and the
     exact count instead of returning a zero-measure 0. *)
  match Selest.Stored.canonical_rect ~x_lo ~x_hi ~y_lo ~y_hi with
  | None -> 0.0
  | Some (x_lo, x_hi, y_lo, y_hi) ->
    let dx_lo, dx_hi = t.dom_x and dy_lo, dy_hi = t.dom_y in
    let x_lo = Float.max x_lo dx_lo and x_hi = Float.min x_hi dx_hi in
    let y_lo = Float.max y_lo dy_lo and y_hi = Float.min y_hi dy_hi in
    if x_lo > x_hi || y_lo > y_hi then 0.0
    else begin
      let n = Array.length t.pts_x in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let mx = axis_mass t ~h:t.hx ~dlo:dx_lo ~dhi:dx_hi x_lo x_hi t.pts_x.(i) in
        if mx <> 0.0 then begin
          let my = axis_mass t ~h:t.hy ~dlo:dy_lo ~dhi:dy_hi y_lo y_hi t.pts_y.(i) in
          acc := !acc +. (mx *. my)
        end
      done;
      Float.max 0.0 (Float.min 1.0 (!acc /. float_of_int n))
    end

let axis_density t ~h ~dlo ~dhi x c =
  let eval u = K.eval t.kernel u /. h in
  let base = eval ((x -. c) /. h) in
  if not t.reflect then base
  else begin
    let rh = K.effective_radius t.kernel *. h in
    let refl_lo = if c -. dlo <= rh then eval ((x -. ((2.0 *. dlo) -. c)) /. h) else 0.0 in
    let refl_hi = if dhi -. c <= rh then eval ((x -. ((2.0 *. dhi) -. c)) /. h) else 0.0 in
    base +. refl_lo +. refl_hi
  end

let density t x y =
  let dx_lo, dx_hi = t.dom_x and dy_lo, dy_hi = t.dom_y in
  if x < dx_lo || x > dx_hi || y < dy_lo || y > dy_hi then 0.0
  else begin
    let n = Array.length t.pts_x in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let fx = axis_density t ~h:t.hx ~dlo:dx_lo ~dhi:dx_hi x t.pts_x.(i) in
      if fx <> 0.0 then
        acc := !acc +. (fx *. axis_density t ~h:t.hy ~dlo:dy_lo ~dhi:dy_hi y t.pts_y.(i))
    done;
    !acc /. float_of_int n
  end

let normal_scale_bandwidths ~kernel points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Kde2d.normal_scale_bandwidths: need at least two samples";
  let rescale = K.canonical_bandwidth_factor kernel /. K.canonical_bandwidth_factor K.Gaussian in
  let rate = float_of_int n ** (-1.0 /. 6.0) in
  let axis coords =
    let s = Stats.Quantile.robust_scale coords in
    let s = if s > 0.0 then s else 1.0 in
    rescale *. s *. rate
  in
  (axis (Array.map fst points), axis (Array.map snd points))

let plug_in_bandwidths ?(iterations = 2) ~kernel points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Kde2d.plug_in_bandwidths: need at least two samples";
  (* The 1-D plug-in selector returns the n^(-1/5)-rate bandwidth; the
     product-kernel AMISE wants the n^(-1/6) rate, so rescale by the rate
     ratio n^(1/5 - 1/6) = n^(1/30). *)
  let rate_fix = float_of_int n ** (1.0 /. 30.0) in
  let axis coords = rate_fix *. Bandwidth.Plug_in.bandwidth ~iterations ~kernel coords in
  (axis (Array.map fst points), axis (Array.map snd points))
