(* Points are stored sorted by x and partitioned into fixed-size blocks;
   each block keeps its y values sorted.  A rectangle count then touches
   O(sqrt N) blocks: interior blocks answer by binary search on y, the two
   boundary blocks by a short scan — fast enough to serve as the exact
   oracle for thousand-query workloads over the 250k-point files. *)

let block_size = 512

type block = {
  x_min : int;
  x_max : int;
  xs : int array; (* x of each point in the block, ascending *)
  ys_by_x : int array; (* y of each point, same order as [xs] *)
  ys_sorted : int array;
}

type t = {
  name : string;
  bits_x : int;
  bits_y : int;
  points : (int * int) array; (* insertion order *)
  blocks : block array;
}

let create ~name ~bits_x ~bits_y points =
  if Array.length points = 0 then invalid_arg "Dataset2d.create: empty point array";
  if bits_x < 1 || bits_x > 30 || bits_y < 1 || bits_y > 30 then
    invalid_arg "Dataset2d.create: bits must be in [1, 30]";
  let limit_x = 1 lsl bits_x and limit_y = 1 lsl bits_y in
  Array.iter
    (fun (x, y) ->
      if x < 0 || x >= limit_x || y < 0 || y >= limit_y then
        invalid_arg
          (Printf.sprintf "Dataset2d.create(%s): point (%d, %d) outside domain" name x y))
    points;
  let points = Array.copy points in
  let by_x = Array.copy points in
  Array.sort (fun (x1, y1) (x2, y2) -> if x1 <> x2 then compare x1 x2 else compare y1 y2) by_x;
  let n = Array.length by_x in
  let n_blocks = (n + block_size - 1) / block_size in
  let blocks =
    Array.init n_blocks (fun b ->
        let start = b * block_size in
        let len = Int.min block_size (n - start) in
        let xs = Array.init len (fun i -> fst by_x.(start + i)) in
        let ys_by_x = Array.init len (fun i -> snd by_x.(start + i)) in
        let ys_sorted = Array.copy ys_by_x in
        Array.sort compare ys_sorted;
        { x_min = xs.(0); x_max = xs.(len - 1); xs; ys_by_x; ys_sorted })
  in
  { name; bits_x; bits_y; points; blocks }

let name t = t.name
let bits_x t = t.bits_x
let bits_y t = t.bits_y
let size t = Array.length t.points
let points t = t.points
let xs t = Array.map fst t.points
let ys t = Array.map snd t.points

let count_in_sorted a lo hi =
  if lo > hi then 0
  else Stats.Array_util.int_upper_bound a hi - Stats.Array_util.int_lower_bound a lo

let exact_count t ~x_lo ~x_hi ~y_lo ~y_hi =
  (* Clamp in float space to the integer domain before any int conversion:
     [int_of_float] is unspecified outside [min_int, max_int], so unbounded
     bounds (±infinity) or NaN must never reach it.  NaN fails the [<=]
     guard below and empties the rectangle. *)
  let max_x = float_of_int ((1 lsl t.bits_x) - 1) in
  let max_y = float_of_int ((1 lsl t.bits_y) - 1) in
  let fx_lo = Float.max 0.0 (Float.ceil x_lo) in
  let fx_hi = Float.min max_x (Float.floor x_hi) in
  let fy_lo = Float.max 0.0 (Float.ceil y_lo) in
  let fy_hi = Float.min max_y (Float.floor y_hi) in
  if not (fx_lo <= fx_hi && fy_lo <= fy_hi) then 0
  else begin
    let ix_lo = int_of_float fx_lo in
    let ix_hi = int_of_float fx_hi in
    let iy_lo = int_of_float fy_lo in
    let iy_hi = int_of_float fy_hi in
    begin
      let total = ref 0 in
      Array.iter
        (fun b ->
          if b.x_max >= ix_lo && b.x_min <= ix_hi then
            if b.x_min >= ix_lo && b.x_max <= ix_hi then
              (* Block fully inside the x range: count on sorted y. *)
              total := !total + count_in_sorted b.ys_sorted iy_lo iy_hi
            else begin
              (* Boundary block: scan the points whose x qualifies. *)
              let i0 = Stats.Array_util.int_lower_bound b.xs ix_lo in
              let i1 = Stats.Array_util.int_upper_bound b.xs ix_hi in
              for i = i0 to i1 - 1 do
                let y = b.ys_by_x.(i) in
                if y >= iy_lo && y <= iy_hi then incr total
              done
            end)
        t.blocks;
      !total
    end
  end

let exact_selectivity t ~x_lo ~x_hi ~y_lo ~y_hi =
  float_of_int (exact_count t ~x_lo ~x_hi ~y_lo ~y_hi) /. float_of_int (size t)

let sample_without_replacement t rng ~n =
  let total = size t in
  if n <= 0 || n > total then
    invalid_arg "Dataset2d.sample_without_replacement: n outside [1, size]";
  let indices = Array.init total Fun.id in
  Prng.Xoshiro256pp.shuffle_prefix rng indices n;
  Array.init n (fun i ->
      let x, y = t.points.(indices.(i)) in
      (float_of_int x, float_of_int y))

let describe t =
  Printf.sprintf "%-10s px=%-2d py=%-2d points=%d" t.name t.bits_x t.bits_y (size t)
