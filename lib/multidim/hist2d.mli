(** Two-dimensional equi-width grid histogram: the baseline the 2-D kernel
    estimator is compared against (the straightforward generalization of
    Section 3.1's equi-width histogram and of formula (4) to rectangles,
    under a uniform-within-cell assumption).

    Rectangle queries follow the closed-rectangle-on-the-integer-grid
    semantics shared by every 2-D estimator here
    ({!Selest.Stored.canonical_rect}): a query means the integer points it
    contains, so a degenerate [[a, a]] bound selects the unit cell around
    [a] and agrees with the inclusive exact count — and with
    {!sampling_selectivity}.

    The type is the core's servable summary ({!Selest.Stored.rect}); the
    catalog snapshots it and the server answers it bit-identically to the
    direct calls below. *)

type t = Selest.Stored.rect

val build :
  domain_x:float * float ->
  domain_y:float * float ->
  bins_x:int ->
  bins_y:int ->
  (float * float) array ->
  t
(** @raise Invalid_argument on empty sample, empty domains or non-positive
    bin counts. *)

val bins : t -> int * int
(** The grid resolution [(bins_x, bins_y)]. *)

val selectivity :
  t -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Sum over grid cells of [count/n] times the overlapped area fraction of
    the canonical rectangle, clamped to [[0, 1]]; [0] when the rectangle
    contains no integer point. *)

val density : t -> float -> float -> float
(** Cell count over [n * cell area]; 0 outside the grid. *)

val to_stored : t -> Selest.Stored.rect
(** The summary itself (the identity — exposed so intent reads at call
    sites that hand a histogram to the catalog). *)

val of_stored : Selest.Stored.rect -> t
(** Adopt a summary loaded from a snapshot as a queryable histogram. *)

val sampling_selectivity :
  (float * float) array -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Pure 2-D sampling: the fraction of sample points inside the canonical
    rectangle, boundaries inclusive (the baseline estimator, here because
    it needs no structure). *)
