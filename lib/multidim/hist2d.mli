(** Two-dimensional equi-width grid histogram: the baseline the 2-D kernel
    estimator is compared against (the straightforward generalization of
    Section 3.1's equi-width histogram and of formula (4) to rectangles,
    under a uniform-within-cell assumption). *)

type t

val build :
  domain_x:float * float ->
  domain_y:float * float ->
  bins_x:int ->
  bins_y:int ->
  (float * float) array ->
  t
(** @raise Invalid_argument on empty sample, empty domains or non-positive
    bin counts. *)

val bins : t -> int * int
(** The grid resolution [(bins_x, bins_y)]. *)

val selectivity :
  t -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Sum over grid cells of [count/n] times the overlapped area fraction,
    clamped to [[0, 1]]. *)

val density : t -> float -> float -> float
(** Cell count over [n * cell area]; 0 outside the grid. *)

val sampling_selectivity :
  (float * float) array -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** Pure 2-D sampling: the fraction of sample points inside the rectangle
    (the baseline estimator, here because it needs no structure). *)
