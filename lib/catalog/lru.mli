(** Bounded least-recently-used cache of named values.

    The catalog keeps only the hottest statistics summaries resident; the
    rest stay on disk and reload on demand.  This module is the residency
    policy: a string-keyed map bounded by [capacity], evicting the entry
    least recently touched by {!find} or {!add}.

    Hits, misses and evictions are counted twice: into plain integers
    (always, readable via {!stats} — the bench hit rate works with
    telemetry off) and into [Telemetry.Metrics] counters
    ([catalog_cache_{hits,misses,evictions}_total], labelled
    [cache=<cache_name>]) so a telemetry dump shows cache behaviour next
    to build and query timings.

    Not thread-safe: the cache mutates on every {!find}.  Single-owner by
    design, like [Catalog.Service] above it. *)

type 'a t

val create : ?cache_name:string -> capacity:int -> unit -> 'a t
(** [create ~capacity ()] makes an empty cache holding at most [capacity]
    entries.  [cache_name] (default ["default"]) labels the telemetry
    counters.  @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
(** The bound given to {!create}. *)

val length : 'a t -> int
(** Number of entries currently resident. *)

val mem : 'a t -> string -> bool
(** Pure containment test: no promotion, no counter updates. *)

val find : 'a t -> string -> 'a option
(** [find t key] returns the cached value and promotes it to
    most-recently-used; counts a hit, or a miss on [None]. *)

val find_exn : 'a t -> string -> 'a
(** {!find} without the option: returns the cached value directly, or
    raises [Not_found] on a miss.  Same promotion and hit/miss accounting
    as {!find}; a hit allocates nothing, which is why the served estimate
    fast path ([Service.answer_into]) resolves through this. *)

val peek : 'a t -> string -> 'a option
(** {!find} without promotion or counter updates — for bookkeeping reads
    that should not perturb the recency order or the hit rate. *)

val add : 'a t -> string -> 'a -> unit
(** [add t key v] inserts (or replaces) [key] as most-recently-used,
    evicting the least-recently-used entry if the cache is over capacity;
    replacements never evict. *)

val remove : 'a t -> string -> unit
(** Drop [key] if resident (not counted as an eviction); no-op otherwise. *)

val keys : 'a t -> string list
(** Resident keys, most-recently-used first. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : 'a t -> stats
(** Lifetime counts for this cache instance (independent of telemetry). *)
