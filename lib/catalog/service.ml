type config = {
  capacity : int;
  rebuild_after_inserts : int;
  cells : int;
}

let default_config = { capacity = 32; rebuild_after_inserts = 10_000; cells = 256 }

(* Per-entry metadata stays resident even when the summary itself is
   evicted: staleness must be trackable without touching the disk. *)
type meta = {
  kind : Selest.Stored.kind;
  spec : string;
  provenance : string option; (* audit trail of where the spec came from *)
  mutable cells : int;
  domain : float * float; (* x-domain for rect entries *)
  domain_y : (float * float) option; (* rect entries only *)
  mutable inserts : int;
  mutable stale : bool;
}

type adaptive_config = {
  reservoir_capacity : int;
  min_rebuild_sample : int;
  refresh_after_observes : int;
  learning_rate : float;
  adaptive_seed : int64;
}

let default_adaptive_config =
  {
    reservoir_capacity = 1024;
    min_rebuild_sample = 64;
    refresh_after_observes = 256;
    learning_rate = 0.5;
    adaptive_seed = 0xada9_71fe_55aaL;
  }

(* Per-entry adaptive state, created lazily on the first insert/observe.
   Confined to the service owner (the shard dispatcher); only the rebuild
   worker below runs off-thread, and it never touches this record. *)
type astate = {
  reservoir : Online.Reservoir.t;
      (* range: attribute values; rect: x coordinates; join: R-side values *)
  reservoir_y : Online.Reservoir.t option;
      (* rect entries only: y coordinates, created with the same seed as
         [reservoir] and fed in lockstep.  Algorithm R's replacement
         decisions depend only on (seed, seen count), never on the values,
         so the two reservoirs make identical slot choices and slot [i]
         of each always holds the coordinates of the same point. *)
  mutable feedback : Feedback.Adaptive.t option;
      (* range entries only: rect/join summaries have no ST-histogram *)
  mutable observes_since_refresh : int;
  mutable rebuild_failed : string option;
      (* last background rebuild error; cleared by fresh inserts so the
         tick does not hot-loop on a sample the estimator rejects *)
}

(* An in-flight background rebuild.  The worker thread fills [p_result]
   under [p_m] and fires the wake callback; the owner joins and installs
   the summary from [adaptive_tick]. *)
type pending = {
  p_name : string;
  p_m : Mutex.t;
  mutable p_result : (Selest.Stored.any, string) result option;
  mutable p_thread : Thread.t option;
}

type adaptive_rt = {
  acfg : adaptive_config;
  states : (string, astate) Hashtbl.t;
  mutable pending : pending option;
}

type t = {
  dir : string;
  config : config;
  index : (string, meta) Hashtbl.t;
  cache : Selest.Stored.any Lru.t;
  mutable adaptive : adaptive_rt option;
  m_entries : Telemetry.Metrics.gauge;
  m_builds : Telemetry.Metrics.counter;
  m_rebuilds : Telemetry.Metrics.counter;
  m_stale : Telemetry.Metrics.counter;
  m_snapshot_writes : Telemetry.Metrics.counter;
  m_snapshot_load_errors : Telemetry.Metrics.counter;
  m_batch_requests : Telemetry.Metrics.counter;
  m_answer_seconds : Telemetry.Metrics.histogram;
  m_adaptive_inserts : Telemetry.Metrics.counter;
  m_observations : Telemetry.Metrics.counter;
  m_swaps : Telemetry.Metrics.counter;
}

type info = {
  name : string;
  kind : Selest.Stored.kind;
  spec : string;
  provenance : string option;
  cells : int;
  domain : float * float;
  domain_y : (float * float) option;
  inserts : int;
  stale : bool;
  cached : bool;
}

let open_dir ?(config = default_config) ?shard dir =
  if config.capacity < 1 then invalid_arg "Catalog.Service.open_dir: capacity must be >= 1";
  if config.rebuild_after_inserts < 1 then
    invalid_arg "Catalog.Service.open_dir: rebuild_after_inserts must be >= 1";
  if config.cells < 1 then invalid_arg "Catalog.Service.open_dir: cells must be >= 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "%s: not a directory" dir));
  let labels =
    ("dir", Filename.basename dir)
    :: (match shard with None -> [] | Some i -> [ ("shard", string_of_int i) ])
  in
  let t =
    {
      dir;
      config;
      index = Hashtbl.create 64;
      cache = Lru.create ~cache_name:(Filename.basename dir) ~capacity:config.capacity ();
      adaptive = None;
      m_entries =
        Telemetry.Metrics.gauge "catalog_entries" ~labels ~help:"Indexed catalog entries";
      m_builds =
        Telemetry.Metrics.counter "catalog_builds_total" ~labels
          ~help:"Summaries built from a sample (including rebuilds)";
      m_rebuilds =
        Telemetry.Metrics.counter "catalog_rebuilds_total" ~labels
          ~help:"Builds that replaced an existing entry";
      m_stale =
        Telemetry.Metrics.counter "catalog_stale_transitions_total" ~labels
          ~help:"Entries that turned stale (insert budget or invalidate)";
      m_snapshot_writes =
        Telemetry.Metrics.counter "catalog_snapshot_writes_total" ~labels
          ~help:"Atomic snapshot files written";
      m_snapshot_load_errors =
        Telemetry.Metrics.counter "catalog_snapshot_load_errors_total" ~labels
          ~help:"Snapshot files skipped as corrupt during recovery";
      m_batch_requests =
        Telemetry.Metrics.counter "catalog_batch_requests_total" ~labels
          ~help:"Range queries answered through Service.answer";
      m_answer_seconds =
        Telemetry.Metrics.histogram "catalog_answer_seconds" ~labels
          ~help:"Latency of Service.answer batches";
      m_adaptive_inserts =
        Telemetry.Metrics.counter "catalog_adaptive_inserts_total" ~labels
          ~help:"Values offered to per-entry reservoirs via Service.insert";
      m_observations =
        Telemetry.Metrics.counter "catalog_observations_total" ~labels
          ~help:"True selectivities absorbed via Service.observe";
      m_swaps =
        Telemetry.Metrics.counter "catalog_adaptive_swaps_total" ~labels
          ~help:"Summaries atomically swapped by the adaptive tick";
    }
  in
  let entries, skipped = Snapshot.load_dir ?shard ~dir () in
  List.iter
    (fun (e : Snapshot.entry) ->
      Hashtbl.replace t.index e.name
        {
          kind = Selest.Stored.any_kind e.summary;
          spec = e.spec;
          provenance = e.provenance;
          cells = Selest.Stored.any_cells e.summary;
          domain = Selest.Stored.any_domain e.summary;
          domain_y =
            (match e.summary with
            | Selest.Stored.Rect r -> Some (snd (Selest.Stored.rect_domains r))
            | _ -> None);
          inserts = e.inserts;
          stale = e.stale;
        })
    entries;
  Telemetry.Metrics.add t.m_snapshot_load_errors (List.length skipped);
  Telemetry.Metrics.set t.m_entries (float_of_int (Hashtbl.length t.index));
  (t, skipped)

let dir t = t.dir
let config t = t.config
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.index [] |> List.sort String.compare
let mem t name = Hashtbl.mem t.index name

let info_of t name (m : meta) =
  {
    name;
    kind = m.kind;
    spec = m.spec;
    provenance = m.provenance;
    cells = m.cells;
    domain = m.domain;
    domain_y = m.domain_y;
    inserts = m.inserts;
    stale = m.stale;
    cached = Lru.mem t.cache name;
  }

let info t name = Option.map (info_of t name) (Hashtbl.find_opt t.index name)

let infos t =
  List.filter_map (fun name -> info t name) (names t)

(* Rewrite the entry's snapshot from current metadata.  The summary is
   read without touching recency or hit/miss accounting; if it was
   evicted, it is reloaded from the existing snapshot first. *)
let persist t name (m : meta) =
  let summary =
    match Lru.peek t.cache name with
    | Some s -> s
    | None -> (
      match Snapshot.load ~path:(Snapshot.path ~dir:t.dir name) with
      | Ok e -> e.Snapshot.summary
      | Error msg ->
        raise
          (Sys_error (Printf.sprintf "catalog: snapshot of %S unreadable: %s" name msg)))
  in
  Snapshot.save ~dir:t.dir
    {
      Snapshot.name;
      spec = m.spec;
      inserts = m.inserts;
      stale = m.stale;
      provenance = m.provenance;
      summary;
    };
  Telemetry.Metrics.incr t.m_snapshot_writes

(* Shared tail of every build path: index, cache and snapshot move
   together, so a successful build is immediately servable and survives a
   restart. *)
let install_built t ~name ~spec ~provenance summary =
  let existed = Hashtbl.mem t.index name in
  let m =
    {
      kind = Selest.Stored.any_kind summary;
      spec;
      provenance;
      cells = Selest.Stored.any_cells summary;
      domain = Selest.Stored.any_domain summary;
      domain_y =
        (match summary with
        | Selest.Stored.Rect r -> Some (snd (Selest.Stored.rect_domains r))
        | _ -> None);
      inserts = 0;
      stale = false;
    }
  in
  Hashtbl.replace t.index name m;
  Lru.add t.cache name summary;
  Snapshot.save ~dir:t.dir
    { Snapshot.name; spec; inserts = 0; stale = false; provenance; summary };
  Telemetry.Metrics.incr t.m_snapshot_writes;
  Telemetry.Metrics.incr t.m_builds;
  if existed then Telemetry.Metrics.incr t.m_rebuilds;
  Telemetry.Metrics.set t.m_entries (float_of_int (Hashtbl.length t.index));
  Ok (info_of t name m)

let check_name who name =
  if name = "" then Error (who ^ ": entry name must not be empty")
  else if String.contains name '\n' then
    Error (who ^ ": entry name must not contain newlines")
  else Ok ()

let build ?provenance t ~name ~spec ~domain ~sample =
  match check_name "Catalog.Service.build" name with
  | Error msg -> Error msg
  | Ok () -> (
    match Selest.Estimator.spec_of_string spec with
    | Error e -> Error e
    | Ok parsed -> (
      match
        Telemetry.Span.with_span "catalog.build" (fun () ->
            let est = Selest.Estimator.build parsed ~domain sample in
            Selest.Stored.of_estimator ~cells:t.config.cells ~domain est)
      with
      | exception Invalid_argument msg -> Error msg
      | summary -> install_built t ~name ~spec ~provenance (Selest.Stored.Range summary)))

let build_rect t ~name ~spec ~domain_x ~domain_y ~points =
  match check_name "Catalog.Service.build_rect" name with
  | Error msg -> Error msg
  | Ok () -> (
    match Selest.Stored.rect_spec_of_string spec with
    | Error e -> Error e
    | Ok (bins_x, bins_y) -> (
      match
        Telemetry.Span.with_span "catalog.build" (fun () ->
            Selest.Stored.rect_of_points ~domain_x ~domain_y ~bins_x ~bins_y points)
      with
      | exception Invalid_argument msg -> Error msg
      | rect -> install_built t ~name ~spec ~provenance:None (Selest.Stored.Rect rect)))

let build_join t ~name ~spec ~domain ~n_r ~n_s ~sample_r ~sample_s =
  match check_name "Catalog.Service.build_join" name with
  | Error msg -> Error msg
  | Ok () -> (
    match Selest.Stored.join_spec_of_string spec with
    | Error e -> Error e
    | Ok buckets -> (
      match
        Telemetry.Span.with_span "catalog.build" (fun () ->
            Selest.Stored.join_of_samples ~domain ~buckets ~n_r ~n_s sample_r sample_s)
      with
      | exception Invalid_argument msg -> Error msg
      | join -> install_built t ~name ~spec ~provenance:None (Selest.Stored.Join join)))

let unknown name = Error (Printf.sprintf "unknown catalog entry %S" name)

let kind_mismatch name ~want ~got =
  Error
    (Printf.sprintf "catalog entry %S is a %s entry, not %s" name
       (Selest.Stored.kind_name got) (Selest.Stored.kind_name want))

let rebuild t ~name ~sample =
  match Hashtbl.find_opt t.index name with
  | None -> unknown name
  | Some m when m.kind <> Selest.Stored.Range_kind ->
    kind_mismatch name ~want:Selest.Stored.Range_kind ~got:m.kind
  | Some m ->
    (* The spec's origin is unchanged by refitting it on a fresh sample. *)
    build ?provenance:m.provenance t ~name ~spec:m.spec ~domain:m.domain ~sample

(* Raise the stale flag if the insert budget is spent; returns whether the
   entry transitioned. *)
let refresh_staleness t (m : meta) =
  let was = m.stale in
  if m.inserts >= t.config.rebuild_after_inserts then m.stale <- true;
  if m.stale && not was then Telemetry.Metrics.incr t.m_stale;
  m.stale && not was

let record_inserts t ~name count =
  match Hashtbl.find_opt t.index name with
  | None -> unknown name
  | Some m ->
    m.inserts <- m.inserts + abs count;
    ignore (refresh_staleness t m);
    persist t name m;
    Ok ()

let sync_maintenance t ~name maintenance =
  match Hashtbl.find_opt t.index name with
  | None -> unknown name
  | Some m ->
    m.inserts <- Selest.Maintenance.changed_count maintenance;
    ignore (refresh_staleness t m);
    persist t name m;
    Ok ()

let invalidate t name =
  match Hashtbl.find_opt t.index name with
  | None -> unknown name
  | Some m ->
    if not m.stale then begin
      m.stale <- true;
      Telemetry.Metrics.incr t.m_stale
    end;
    (* Persist first: the summary may only be resident in the cache copy
       we are about to drop. *)
    persist t name m;
    Lru.remove t.cache name;
    Ok ()

let drop t name =
  match Hashtbl.find_opt t.index name with
  | None -> unknown name
  | Some _ ->
    Hashtbl.remove t.index name;
    Lru.remove t.cache name;
    Snapshot.delete ~dir:t.dir name;
    Telemetry.Metrics.set t.m_entries (float_of_int (Hashtbl.length t.index));
    Ok ()

(* One cache access per call: a hit, or a miss that loads the snapshot
   into the cache.  Raises on unknown names and unreadable snapshots.
   The hit path goes through [Lru.find_exn] and allocates nothing. *)
let resolve_exn t name =
  if not (Hashtbl.mem t.index name) then
    invalid_arg (Printf.sprintf "Catalog.Service: unknown entry %S" name);
  match Lru.find_exn t.cache name with
  | summary -> summary
  | exception Not_found -> (
    match Snapshot.load ~path:(Snapshot.path ~dir:t.dir name) with
    | Ok e ->
      Lru.add t.cache name e.Snapshot.summary;
      e.Snapshot.summary
    | Error msg ->
      invalid_arg (Printf.sprintf "Catalog.Service: snapshot of %S unreadable: %s" name msg))

(* The range-query paths keep their historical exception contract; a
   range request against a rect/join entry is a caller error of the same
   class as an unknown name. *)
let resolve_range_exn t name =
  match resolve_exn t name with
  | Selest.Stored.Range s -> s
  | other ->
    invalid_arg
      (Printf.sprintf "Catalog.Service: entry %S is a %s entry, not range" name
         (Selest.Stored.kind_name (Selest.Stored.any_kind other)))

let answer ?(jobs = 1) t requests =
  if jobs < 1 then invalid_arg "Catalog.Service.answer: jobs must be >= 1";
  Telemetry.Metrics.add t.m_batch_requests (Array.length requests);
  Telemetry.Span.with_span ~hist:t.m_answer_seconds "catalog.answer" (fun () ->
      (* Group per entry: each distinct name costs one cache access per
         batch, however many requests mention it.  Resolution runs in the
         calling domain (cache and disk are single-owner); only the pure
         summary probes fan out. *)
      let resolved = Hashtbl.create 8 in
      Array.iter
        (fun (name, _, _) ->
          if not (Hashtbl.mem resolved name) then
            Hashtbl.replace resolved name (resolve_range_exn t name))
        requests;
      Parallel.Map.map ~jobs
        (fun (name, a, b) ->
          Selest.Stored.selectivity (Hashtbl.find resolved name) ~a ~b)
        requests)

(* The served fast path.  Structure-of-arrays in, answers out, zero
   allocation at steady state: each maximal run of equal names costs one
   [resolve_exn] (a no-alloc cache hit once the summary is resident) and
   one [Stored.selectivity_into] over its slice, which is bit-identical
   to the scalar probes [answer] makes.  Timing uses the manual
   [Span.start_ns]/[record] pair instead of [with_span] so no closure is
   built per batch. *)
let answer_into t ~n ~names ~a ~b ~out =
  if n < 0 then invalid_arg "Catalog.Service.answer_into: negative batch size";
  if Array.length names < n || Array.length a < n || Array.length b < n
     || Array.length out < n
  then invalid_arg "Catalog.Service.answer_into: arrays shorter than n";
  Telemetry.Metrics.add t.m_batch_requests n;
  let t0 = Telemetry.Span.start_ns () in
  let i = ref 0 in
  while !i < n do
    let name = Array.unsafe_get names !i in
    let summary = resolve_range_exn t name in
    let j = ref (!i + 1) in
    while !j < n && String.equal (Array.unsafe_get names !j) name do
      incr j
    done;
    Selest.Stored.selectivity_into summary ~pos:!i ~len:(!j - !i) ~a ~b ~out;
    i := !j
  done;
  (* Guarded so the disabled path builds no [Some hist] cell per batch. *)
  if t0 <> 0 then Telemetry.Span.record ~hist:t.m_answer_seconds ~start_ns:t0 "catalog.answer"

let answer_one t ~name ~a ~b =
  if not (mem t name) then unknown name
  else
    match resolve_range_exn t name with
    | exception Invalid_argument msg -> Error msg
    | summary -> Ok (Selest.Stored.selectivity summary ~a ~b)

(* The rect/join answer paths: one cache access, then pure arithmetic in
   [Selest.Stored] — the same functions Multidim.Hist2d and Join.Ineqjoin
   delegate to, which is what makes a served answer bit-identical to the
   direct library call. *)
let answer_rect t ~name ~x_lo ~x_hi ~y_lo ~y_hi =
  if not (mem t name) then unknown name
  else
    match resolve_exn t name with
    | exception Invalid_argument msg -> Error msg
    | Selest.Stored.Rect r ->
      Telemetry.Metrics.incr t.m_batch_requests;
      Ok (Selest.Stored.rect_selectivity r ~x_lo ~x_hi ~y_lo ~y_hi)
    | other ->
      kind_mismatch name ~want:Selest.Stored.Rect_kind
        ~got:(Selest.Stored.any_kind other)

let answer_join t ~name ~pred =
  if not (mem t name) then unknown name
  else
    match resolve_exn t name with
    | exception Invalid_argument msg -> Error msg
    | Selest.Stored.Join j ->
      Telemetry.Metrics.incr t.m_batch_requests;
      Ok (Selest.Stored.join_estimate j ~pred)
    | other ->
      kind_mismatch name ~want:Selest.Stored.Join_kind
        ~got:(Selest.Stored.any_kind other)

let cache_stats t = Lru.stats t.cache

(* FNV-1a over the entry name.  Stable across processes and OCaml
   versions; used both to place entries in shard directories and to
   derive per-entry reservoir seeds.  (Hashtbl.hash is explicitly not
   that: its value is version-dependent.) *)
let fnv1a name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  !h

(* ---------------- adaptivity ---------------- *)

let enable_adaptive ?(config = default_adaptive_config) t =
  if config.reservoir_capacity < 1 then
    invalid_arg "Catalog.Service.enable_adaptive: reservoir_capacity must be >= 1";
  if config.min_rebuild_sample < 1 then
    invalid_arg "Catalog.Service.enable_adaptive: min_rebuild_sample must be >= 1";
  if config.refresh_after_observes < 1 then
    invalid_arg "Catalog.Service.enable_adaptive: refresh_after_observes must be >= 1";
  if not (config.learning_rate > 0.0 && config.learning_rate <= 1.0) then
    invalid_arg "Catalog.Service.enable_adaptive: learning_rate must be in (0, 1]";
  match t.adaptive with
  | Some _ -> invalid_arg "Catalog.Service.enable_adaptive: already enabled"
  | None ->
    t.adaptive <- Some { acfg = config; states = Hashtbl.create 16; pending = None }

let adaptive_enabled t = Option.is_some t.adaptive

let adaptive_disabled =
  Error "adaptive serving is disabled (start the server with --adaptive)"

(* Seed the per-entry feedback histogram from the entry's current summary,
   at the summary's own grid resolution so a later refresh loses nothing.
   Only range summaries carry one; rect/join adaptivity is
   reservoir-rebuild only. *)
let seed_feedback rt (m : meta) summary =
  match (summary : Selest.Stored.any) with
  | Selest.Stored.Range s ->
    Some
      (Feedback.Adaptive.create ~buckets:m.cells ~learning_rate:rt.acfg.learning_rate
         ~domain:m.domain
         ~base:(fun ~a ~b -> Selest.Stored.selectivity s ~a ~b)
         ())
  | Selest.Stored.Rect _ | Selest.Stored.Join _ -> None

let adaptive_state t rt name (m : meta) =
  match Hashtbl.find_opt rt.states name with
  | Some st -> Ok st
  | None -> (
    match resolve_exn t name with
    | exception Invalid_argument msg -> Error msg
    | summary ->
      let seed = Int64.logxor rt.acfg.adaptive_seed (fnv1a name) in
      let st =
        {
          reservoir =
            Online.Reservoir.create ~seed ~capacity:rt.acfg.reservoir_capacity ();
          reservoir_y =
            (if m.kind = Selest.Stored.Rect_kind then
               Some (Online.Reservoir.create ~seed ~capacity:rt.acfg.reservoir_capacity ())
             else None);
          feedback = seed_feedback rt m summary;
          observes_since_refresh = 0;
          rebuild_failed = None;
        }
      in
      Hashtbl.replace rt.states name st;
      Ok st)

let insert t ~name values =
  match t.adaptive with
  | None -> adaptive_disabled
  | Some rt -> (
    match Hashtbl.find_opt t.index name with
    | None -> unknown name
    | Some m ->
      if Array.exists (fun v -> not (Float.is_finite v)) values then
        Error "insert: values must be finite"
      else if m.kind = Selest.Stored.Rect_kind && Array.length values mod 2 <> 0 then
        Error "insert: rect entries take flattened (x, y) pairs; even length required"
      else (
        match adaptive_state t rt name m with
        | Error _ as e -> e
        | Ok st ->
          let inserted =
            match st.reservoir_y with
            | None ->
              (* Range values, or join R-side values: one reservoir. *)
              Online.Reservoir.add_array st.reservoir values;
              Array.length values
            | Some ry ->
              (* Rect: de-interleave the flattened pairs into the two
                 lockstep reservoirs (same seed, same seen count — same
                 slot decisions, so pairing survives sampling). *)
              let pairs = Array.length values / 2 in
              for p = 0 to pairs - 1 do
                Online.Reservoir.add st.reservoir values.(2 * p);
                Online.Reservoir.add ry values.((2 * p) + 1)
              done;
              pairs
          in
          st.rebuild_failed <- None;
          m.inserts <- m.inserts + inserted;
          (* Persist only on the stale transition: one snapshot write per
             budget cycle instead of one per insert frame.  Staleness
             still survives restarts once tripped; sub-budget counts are
             the acceptable loss on kill. *)
          if refresh_staleness t m then persist t name m;
          Telemetry.Metrics.add t.m_adaptive_inserts inserted;
          Ok (Online.Reservoir.size st.reservoir, Online.Reservoir.seen st.reservoir)))

let observe t ~name ~a ~b ~actual =
  match t.adaptive with
  | None -> adaptive_disabled
  | Some rt -> (
    match Hashtbl.find_opt t.index name with
    | None -> unknown name
    | Some m ->
      if not (Float.is_finite actual && actual >= 0.0 && actual <= 1.0) then
        Error "observe: actual selectivity must be in [0, 1]"
      else if not (Float.is_finite a && Float.is_finite b) then
        Error "observe: range bounds must be finite"
      else (
        match adaptive_state t rt name m with
        | Error _ as e -> e
        | Ok st -> (
          match st.feedback with
          | None ->
            Error
              (Printf.sprintf
                 "observe: entry %S is a %s entry; only range entries take feedback"
                 name (Selest.Stored.kind_name m.kind))
          | Some fb ->
            Feedback.Adaptive.observe fb ~a ~b ~actual;
            st.observes_since_refresh <- st.observes_since_refresh + 1;
            Telemetry.Metrics.incr t.m_observations;
            Ok (Feedback.Adaptive.selectivity fb ~a ~b))))

(* Install [summary] as the entry's served version: cache, metadata and
   snapshot move together, and the feedback histogram is reseeded from the
   new summary so refinement continues against what is actually served.
   The swap happens entirely in the owner between [answer_into] calls —
   a read sees the old bits or the new bits, never a torn mix. *)
let install_summary t rt name (m : meta) (st : astate) summary ~reset_staleness =
  Lru.add t.cache name summary;
  m.cells <- Selest.Stored.any_cells summary;
  if reset_staleness then begin
    m.inserts <- 0;
    m.stale <- false
  end;
  persist t name m;
  st.feedback <- seed_feedback rt m summary;
  st.observes_since_refresh <- 0;
  Telemetry.Metrics.incr t.m_swaps

(* The worker closes over its own copy of the reservoir sample and the
   entry's immutable build inputs — it never touches service state.  The
   (cheap) snapshot copy happens here in the owner.  What a rebuild means
   is kind-specific: range refits the spec on the sample; rect re-grids
   the paired reservoirs; join re-buckets the R side from its reservoir
   while keeping the summarized S side (inserts stream into R). *)
let launch_rebuild t rt name (m : meta) (st : astate) wake =
  let p =
    { p_name = name; p_m = Mutex.create (); p_result = None; p_thread = None }
  in
  let job : unit -> (Selest.Stored.any, string) result =
    match m.kind with
    | Selest.Stored.Range_kind ->
      let sample = Online.Reservoir.sample st.reservoir in
      let spec = m.spec and domain = m.domain and cells = m.cells in
      fun () -> (
        match Selest.Estimator.spec_of_string spec with
        | Error e -> Error e
        | Ok parsed -> (
          match
            Selest.Stored.of_estimator ~cells ~domain
              (Selest.Estimator.build parsed ~domain sample)
          with
          | summary -> Ok (Selest.Stored.Range summary)
          | exception Invalid_argument msg -> Error msg))
    | Selest.Stored.Rect_kind ->
      let xs = Online.Reservoir.sample st.reservoir in
      let ys =
        match st.reservoir_y with
        | Some ry -> Online.Reservoir.sample ry
        | None -> [||]
      in
      let spec = m.spec and domain_x = m.domain in
      let domain_y = Option.value ~default:m.domain m.domain_y in
      fun () -> (
        match Selest.Stored.rect_spec_of_string spec with
        | Error e -> Error e
        | Ok (bins_x, bins_y) ->
          if Array.length xs <> Array.length ys then
            Error "rect rebuild: reservoirs out of lockstep"
          else (
            match
              Selest.Stored.rect_of_points ~domain_x ~domain_y ~bins_x ~bins_y
                (Array.map2 (fun x y -> (x, y)) xs ys)
            with
            | rect -> Ok (Selest.Stored.Rect rect)
            | exception Invalid_argument msg -> Error msg))
    | Selest.Stored.Join_kind ->
      let sample_r = Online.Reservoir.sample st.reservoir in
      let spec = m.spec and domain = m.domain in
      let current =
        match Lru.peek t.cache name with
        | Some (Selest.Stored.Join j) -> Some j
        | _ -> (
          match Snapshot.load ~path:(Snapshot.path ~dir:t.dir name) with
          | Ok { Snapshot.summary = Selest.Stored.Join j; _ } -> Some j
          | _ -> None)
      in
      fun () -> (
        match (Selest.Stored.join_spec_of_string spec, current) with
        | Error e, _ -> Error e
        | Ok _, None -> Error "join rebuild: current summary unreadable"
        | Ok buckets, Some j ->
          let n_r, n_s = Selest.Stored.join_sizes j in
          let _, sample_s = Selest.Stored.join_samples j in
          (match
             Selest.Stored.join_of_samples ~domain ~buckets ~n_r ~n_s sample_r
               sample_s
           with
          | join -> Ok (Selest.Stored.Join join)
          | exception Invalid_argument msg -> Error msg))
  in
  rt.pending <- Some p;
  let worker () =
    let result = job () in
    Mutex.lock p.p_m;
    p.p_result <- Some result;
    Mutex.unlock p.p_m;
    wake ()
  in
  p.p_thread <- Some (Thread.create worker ())

let adaptive_tick ?(wake = fun () -> ()) t =
  match t.adaptive with
  | None -> 0
  | Some rt ->
    let swaps = ref 0 in
    (* 1. Reap a finished background rebuild and swap it in. *)
    (match rt.pending with
    | Some p ->
      let result =
        Mutex.lock p.p_m;
        let r = p.p_result in
        Mutex.unlock p.p_m;
        r
      in
      (match result with
      | None -> () (* still running *)
      | Some r ->
        Option.iter Thread.join p.p_thread;
        rt.pending <- None;
        (match (r, Hashtbl.find_opt t.index p.p_name) with
        | _, None -> () (* entry dropped while rebuilding; discard *)
        | Ok summary, Some m ->
          (match Hashtbl.find_opt rt.states p.p_name with
          | None -> ()
          | Some st ->
            install_summary t rt p.p_name m st summary ~reset_staleness:true;
            Telemetry.Metrics.incr t.m_builds;
            Telemetry.Metrics.incr t.m_rebuilds;
            incr swaps)
        | Error msg, Some _ ->
          Option.iter
            (fun st -> st.rebuild_failed <- Some msg)
            (Hashtbl.find_opt rt.states p.p_name)))
    | None -> ());
    (* 2. Apply every due feedback refresh synchronously (probing the
       ST-histogram over the grid is microseconds; no worker needed). *)
    Hashtbl.iter
      (fun name st ->
        match st.feedback with
        | Some fb when st.observes_since_refresh >= rt.acfg.refresh_after_observes -> (
          match Hashtbl.find_opt t.index name with
          | None -> ()
          | Some m ->
            let summary =
              Selest.Stored.of_fn ~cells:m.cells ~domain:m.domain (fun ~a ~b ->
                  Feedback.Adaptive.selectivity fb ~a ~b)
            in
            install_summary t rt name m st (Selest.Stored.Range summary)
              ~reset_staleness:false;
            incr swaps)
        | _ -> ())
      rt.states;
    (* 3. Launch at most one background resample rebuild for the first
       stale entry with enough reservoir (sorted order for determinism). *)
    if rt.pending = None then begin
      let due name =
        match (Hashtbl.find_opt t.index name, Hashtbl.find_opt rt.states name) with
        | Some m, Some st
          when m.stale
               && st.rebuild_failed = None
               && Online.Reservoir.size st.reservoir >= rt.acfg.min_rebuild_sample ->
          Some (m, st)
        | _ -> None
      in
      let rec first = function
        | [] -> ()
        | name :: rest -> (
          match due name with
          | Some (m, st) -> launch_rebuild t rt name m st wake
          | None -> first rest)
      in
      first (names t)
    end;
    !swaps

(* Joining first guarantees [p_result] is set (the worker stores it
   before exiting), so the final tick always reaps — no rebuild is ever
   abandoned mid-flight by an orderly shutdown. *)
let adaptive_drain t =
  match t.adaptive with
  | None -> ()
  | Some rt ->
    (match rt.pending with
    | Some p -> Option.iter Thread.join p.p_thread
    | None -> ());
    ignore (adaptive_tick t)

type adaptive_stats = {
  tracked_entries : int;
  sampled_values : int;
  observations : int;
  rebuild_in_flight : bool;
  last_rebuild_error : string option;
}

let adaptive_stats t =
  match t.adaptive with
  | None ->
    {
      tracked_entries = 0;
      sampled_values = 0;
      observations = 0;
      rebuild_in_flight = false;
      last_rebuild_error = None;
    }
  | Some rt ->
    let sampled = ref 0 and obs = ref 0 and err = ref None in
    Hashtbl.iter
      (fun _ st ->
        sampled := !sampled + Online.Reservoir.seen st.reservoir;
        (match st.feedback with
        | Some fb -> obs := !obs + Feedback.Adaptive.feedback_count fb
        | None -> ());
        if !err = None then err := st.rebuild_failed)
      rt.states;
    {
      tracked_entries = Hashtbl.length rt.states;
      sampled_values = !sampled;
      observations = !obs;
      rebuild_in_flight = rt.pending <> None;
      last_rebuild_error = !err;
    }

(* ---------------- sharding ---------------- *)

(* The FNV-1a hash above, folded modulo the shard count.  The hash must
   be stable — it names the directory an entry persists in, so a
   different hash after an upgrade would strand every snapshot in the
   wrong shard. *)
let shard_of_name ~shards name =
  if shards < 1 then invalid_arg "Catalog.Service.shard_of_name: shards must be >= 1";
  if shards = 1 then 0
  else Int64.to_int (Int64.unsigned_rem (fnv1a name) (Int64.of_int shards))

let shard_dir_name i = Printf.sprintf "shard-%d" i

(* Move every snapshot file found under [dir] — in the flat v1 layout or
   in any shard-*/ subdirectory — to where the target layout wants it:
   the flat directory itself for [shards = 1], shard-<hash>/ otherwise.
   Re-running is a no-op, so opening with a different shard count
   migrates, and opening with the same count touches nothing.  Orphaned
   .tmp files in a directory being vacated are swept here (per-shard
   [load_dir] never scans it); failures go on the skip list instead of
   aborting the open. *)
let migrate_layout ~shards dir =
  let skipped = ref [] in
  let skip file msg = skipped := (file, msg) :: !skipped in
  let snapshot_files d =
    if Sys.file_exists d && Sys.is_directory d then
      Sys.readdir d |> Array.to_list |> List.sort String.compare
      |> List.map (fun f -> (d, f))
    else []
  in
  let shard_subdirs =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "shard-"
           && Sys.is_directory (Filename.concat dir f))
    |> List.map (Filename.concat dir)
  in
  let sources = List.concat_map snapshot_files (dir :: shard_subdirs) in
  let in_target_layout d =
    if shards = 1 then d = dir
    else
      d <> dir
      && (let base = Filename.basename d in
          match int_of_string_opt (String.sub base 6 (String.length base - 6)) with
          | Some i -> base = shard_dir_name i && i >= 0 && i < shards
          | None -> false)
  in
  List.iter
    (fun (src_dir, file) ->
      let src = Filename.concat src_dir file in
      if Filename.check_suffix file Snapshot.tmp_extension then begin
        (* Only vacated directories are swept here; the target layout's
           own directories get the reported sweep in [Snapshot.load_dir]. *)
        if not (in_target_layout src_dir) then
          match Sys.remove src with
          | () -> skip file "orphaned temp file from an interrupted write; deleted"
          | exception Sys_error msg -> skip file ("orphaned temp file; could not delete: " ^ msg)
      end
      else if Filename.check_suffix file Snapshot.extension then
        match Snapshot.decode_file_name file with
        | None -> skip file "not a percent-encoded snapshot file name; left in place"
        | Some name ->
          let target_dir =
            if shards = 1 then dir
            else Filename.concat dir (shard_dir_name (shard_of_name ~shards name))
          in
          if target_dir <> src_dir then begin
            if not (Sys.file_exists target_dir) then Sys.mkdir target_dir 0o755;
            match Sys.rename src (Filename.concat target_dir file) with
            | () -> ()
            | exception Sys_error msg -> skip file ("could not migrate to shard layout: " ^ msg)
          end)
    sources;
  (* Directories the migration emptied are noise for the next scan. *)
  List.iter
    (fun d ->
      if Sys.file_exists d && Sys.readdir d = [||] then
        try Sys.rmdir d with Sys_error _ -> ())
    shard_subdirs;
  List.rev !skipped

let open_sharded ?(config = default_config) ~shards dir =
  if shards < 1 then invalid_arg "Catalog.Service.open_sharded: shards must be >= 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "%s: not a directory" dir));
  let migration_skips = migrate_layout ~shards dir in
  if shards = 1 then begin
    (* Degenerate case is byte-for-byte the v1 flat layout: same
       directory, same metric labels, same [open_dir] result. *)
    let t, skipped = open_dir ~config dir in
    ([| t |], migration_skips @ skipped)
  end
  else begin
    let opened =
      Array.init shards (fun i ->
          open_dir ~config ~shard:i (Filename.concat dir (shard_dir_name i)))
    in
    let skipped =
      Array.to_list opened |> List.concat_map (fun (_, skips) -> skips)
    in
    (Array.map fst opened, migration_skips @ skipped)
  end
