type entry = {
  name : string;
  spec : string;
  inserts : int;
  stale : bool;
  provenance : string option;
  summary : Selest.Stored.any;
}

let magic = "selest-catalog v1"
let extension = ".summary"

let file_name name =
  let buf = Buffer.create (String.length name + 8) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf ^ extension

(* Inverse of [file_name]: strip the extension, then percent-decode.
   Total — a name that is not a percent-encoded snapshot file name
   (wrong suffix, truncated or non-hex escape) is [None], so directory
   scans can tell snapshot files from strangers without loading them. *)
let decode_file_name file =
  if not (Filename.check_suffix file extension) then None
  else begin
    let stem = Filename.chop_suffix file extension in
    let buf = Buffer.create (String.length stem) in
    let n = String.length stem in
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if stem.[i] <> '%' then begin
        Buffer.add_char buf stem.[i];
        go (i + 1)
      end
      else if i + 2 >= n then None
      else
        match (hex stem.[i + 1], hex stem.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ -> None
    in
    go 0
  end

let path ~dir name = Filename.concat dir (file_name name)

let save ~dir entry =
  if String.contains entry.name '\n' then
    invalid_arg "Snapshot.save: entry name must not contain newlines";
  if String.contains entry.spec '\n' then
    invalid_arg "Snapshot.save: spec must not contain newlines";
  (match entry.provenance with
  | Some p when String.contains p '\n' ->
    invalid_arg "Snapshot.save: provenance must not contain newlines"
  | _ -> ());
  let final = path ~dir entry.name in
  let tmp = final ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Printf.fprintf oc "%s\nname %s\nspec %s\ninserts %d\nstale %d\n" magic entry.name
       entry.spec entry.inserts
       (if entry.stale then 1 else 0);
     (match entry.provenance with
     | Some p -> Printf.fprintf oc "provenance %s\n" p
     | None -> ());
     output_string oc (Selest.Stored.any_to_string entry.summary);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp final

(* [field key line] is the remainder of [line] after "key ", or None. *)
let field key line =
  let prefix = key ^ " " in
  let lp = String.length prefix in
  if String.length line >= lp && String.sub line 0 lp = prefix then
    Some (String.sub line lp (String.length line - lp))
  else None

let ( let* ) = Result.bind

let parse contents =
  match String.split_on_char '\n' contents with
  | m :: name_line :: spec_line :: inserts_line :: stale_line :: rest ->
    if String.trim m <> magic then Error "missing selest-catalog v1 header"
    else
      let* name =
        Option.to_result ~none:"missing name line" (field "name" name_line)
      in
      let* spec =
        Option.to_result ~none:"missing spec line" (field "spec" spec_line)
      in
      let* inserts =
        match Option.bind (field "inserts" inserts_line) int_of_string_opt with
        | Some n when n >= 0 -> Ok n
        | Some _ -> Error "negative insert count"
        | None -> Error "missing or malformed inserts line"
      in
      let* stale =
        match field "stale" stale_line with
        | Some "0" -> Ok false
        | Some "1" -> Ok true
        | Some _ -> Error "malformed stale flag"
        | None -> Error "missing stale line"
      in
      (* The provenance line is optional (introduced after the first v1
         files shipped): present iff the next line carries the key.  No
         payload header starts with "provenance " — they all start with
         "selest-stored" — so peeking is unambiguous, and pre-provenance
         snapshots parse unchanged. *)
      let provenance, rest =
        match rest with
        | line :: tail -> (
          match field "provenance" line with
          | Some p -> (Some p, tail)
          | None -> (None, rest))
        | [] -> (None, rest)
      in
      let* summary = Selest.Stored.any_of_string (String.concat "\n" rest) in
      let* () =
        (* A snapshot whose spec no longer parses cannot be rebuilt when it
           goes stale; treat it as corrupt now rather than at rebuild time.
           The payload header decides which spec syntax applies, so the
           summary is parsed first. *)
        let describe = function
          | Ok _ -> Ok ()
          | Error e -> Error (Printf.sprintf "unparseable spec %S: %s" spec e)
        in
        match Selest.Stored.any_kind summary with
        | Selest.Stored.Range_kind ->
          describe (Selest.Estimator.spec_of_string spec)
        | Selest.Stored.Rect_kind -> describe (Selest.Stored.rect_spec_of_string spec)
        | Selest.Stored.Join_kind -> describe (Selest.Stored.join_spec_of_string spec)
      in
      Ok { name; spec; inserts; stale; provenance; summary }
  | _ -> Error "truncated header"

let load ~path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated file"
  | contents -> parse contents

let tmp_extension = extension ^ ".tmp"

let load_dir ?shard ~dir () =
  (* Once the catalog is sharded, every skip/sweep message names the
     shard it came from: "a.summary: corrupt" alone is ambiguous when N
     directories each hold an a.summary. *)
  let tag msg =
    match shard with
    | None -> msg
    | Some i -> Printf.sprintf "shard %d: %s" i msg
  in
  let listing = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  (* A *.summary.tmp file is a write that died between temp-write and
     rename; its final file (if any) is intact, so the orphan is pure
     garbage — sweep it, and report the sweep like a corrupt-file skip. *)
  let orphans =
    List.filter (fun f -> Filename.check_suffix f tmp_extension) listing
    |> List.filter_map (fun f ->
           match Sys.remove (Filename.concat dir f) with
           | () -> Some (f, tag "orphaned temp file from an interrupted write; deleted")
           | exception Sys_error msg ->
             Some (f, tag ("orphaned temp file; could not delete: " ^ msg)))
  in
  let files = List.filter (fun f -> Filename.check_suffix f extension) listing in
  List.fold_left
    (fun (ok, skipped) file ->
      match load ~path:(Filename.concat dir file) with
      | Ok e -> (e :: ok, skipped)
      | Error msg -> (ok, (file, tag msg) :: skipped))
    ([], List.rev orphans) files
  |> fun (ok, skipped) -> (List.rev ok, List.rev skipped)

let delete ~dir name =
  let p = path ~dir name in
  if Sys.file_exists p then Sys.remove p
