(** On-disk snapshots of catalog entries.

    Every catalog entry persists as one text file inside the catalog
    directory: a versioned [selest-catalog v1] header (name, build spec,
    staleness state) followed by the [Selest.Stored.any] payload, whose
    own header line says whether the entry is a range, rect or join
    summary.  The full format, with a worked example, is documented in
    [docs/CATALOG.md].

    Writes are atomic: the file is written to a [.tmp] sibling and
    renamed into place, so a crash mid-write leaves either the previous
    snapshot or none — never a torn file.  Reads are total: any malformed
    file yields [Error], and {!load_dir} skips (and reports) such files
    instead of failing the whole catalog. *)

type entry = {
  name : string;  (** catalog entry name; must not contain newlines *)
  spec : string;
      (** build spec in the syntax of the entry's kind —
          [Selest.Estimator.spec_of_string] for range summaries,
          [Selest.Stored.rect_spec_of_string] for rect,
          [Selest.Stored.join_spec_of_string] for join (kept so a stale
          entry can be rebuilt) *)
  inserts : int;  (** records inserted since the summary was built *)
  stale : bool;  (** true once invalidated or past the rebuild budget *)
  provenance : string option;
      (** optional free-form audit line recording where the spec came
          from (e.g. the advisor's recommendation string behind
          [catalog build --spec auto]); must not contain newlines.
          Written as an optional [provenance] header line, so snapshots
          without one — including every pre-provenance file — still
          parse, and files saved with [None] are byte-identical to the
          original v1 format *)
  summary : Selest.Stored.any;
      (** the serving payload; its own header line names the kind *)
}

val extension : string
(** [".summary"] — the suffix of every snapshot file. *)

val file_name : string -> string
(** Injective mapping from entry name to snapshot file name: bytes outside
    [[A-Za-z0-9._-]] are percent-encoded, then {!extension} is appended,
    so names like ["n(20)/kernel"] become filesystem-safe. *)

val decode_file_name : string -> string option
(** Inverse of {!file_name}: [Some name] when the argument is a
    well-formed percent-encoded snapshot file name (the {!extension}
    suffix stripped, [%XX] escapes decoded), [None] otherwise.  Total —
    it never raises — so directory scans (and the shard-layout migration
    in [Catalog.Service.open_sharded]) can recover entry names without
    loading file contents. *)

val path : dir:string -> string -> string
(** [path ~dir name] is the snapshot path of [name] inside [dir]. *)

val save : dir:string -> entry -> unit
(** Atomically write (or replace) the entry's snapshot.
    @raise Invalid_argument if the name or spec contains a newline.
    @raise Sys_error on I/O failure. *)

val load : path:string -> (entry, string) result
(** Parse one snapshot file.  [Error] describes the first malformed field
    (unreadable file, wrong magic, bad header, unparseable spec, corrupt
    [Stored] payload) and never raises on malformed content. *)

val tmp_extension : string
(** [".summary.tmp"] — the suffix of in-flight {!save} temp files; one
    left on disk marks a write that died before its rename. *)

val load_dir : ?shard:int -> dir:string -> unit -> entry list * (string * string) list
(** Scan [dir] for [*{!extension}] files (sorted by file name) and load
    each: returns the entries that parsed alongside [(file, error)] pairs
    for the ones that did not — the skip-and-report recovery contract.
    Orphaned [*{!tmp_extension}] files from writes that died before their
    rename are swept (deleted) first and reported in the same skip list.
    When [dir] is one shard of a partitioned catalog, pass [shard] and
    every message is prefixed ["shard N: "] — with several directories
    each holding an [a.summary], an unprefixed message would not say
    which copy was skipped (see [docs/SHARDING.md]).
    @raise Sys_error if [dir] itself cannot be read. *)

val delete : dir:string -> string -> unit
(** Remove the snapshot of [name] from [dir], if present. *)
