(** The estimator catalog: named statistics summaries served from a
    bounded cache over a snapshot directory.

    This is the layer a plan-time consumer talks to.  Each entry is a
    compact [Selest.Stored] summary built once from a sample (ANALYZE),
    persisted as an atomic snapshot file ({!Snapshot}), kept hot in an LRU
    cache ({!Lru}) while queried, tracked for staleness as the underlying
    relation changes, and rebuilt from a fresh sample when its insert
    budget runs out.  Batch queries fan out over [Parallel.Map], so
    serving throughput scales with the [jobs] knob while answers stay
    bit-identical for every value of it.

    The full entry lifecycle (build → snapshot → serve → stale → rebuild),
    the on-disk format and cache-tuning guidance are documented in
    [docs/CATALOG.md].

    A service is single-owner (the cache mutates on reads); concurrency
    lives {e inside} {!answer}, which only reads immutable summaries from
    its worker domains. *)

type config = {
  capacity : int;  (** max summaries resident in the cache (default 32) *)
  rebuild_after_inserts : int;
      (** an entry turns stale once this many records changed since its
          summary was built (default 10_000) *)
  cells : int;  (** grid resolution of newly built summaries (default 256) *)
}

val default_config : config
(** [{ capacity = 32; rebuild_after_inserts = 10_000; cells = 256 }]. *)

type t

val open_dir : ?config:config -> ?shard:int -> string -> t * (string * string) list
(** [open_dir dir] opens (creating [dir] if missing) the catalog persisted
    there and indexes every readable snapshot.  Corrupt snapshot files are
    skipped and returned as [(file, error)] pairs — recovery never fails
    the catalog, and the survivors keep serving.  Orphaned
    [{!Snapshot.tmp_extension}] files from writes that died mid-rename are
    swept and reported the same way.  The cache starts cold;
    summaries load on first access.  [shard] tags the service as one
    shard of a partitioned catalog: skip messages carry a ["shard N: "]
    prefix and its telemetry gains a [shard] label (callers normally get
    this via {!open_sharded} rather than passing it themselves).
    @raise Invalid_argument on a non-positive [config] field.
    @raise Sys_error if [dir] cannot be created or read. *)

val shard_of_name : shards:int -> string -> int
(** The shard (in [0 .. shards-1]) that owns an entry name: a stable
    FNV-1a hash folded modulo [shards].  Stable across processes and
    OCaml versions — it determines the directory an entry persists in —
    and [shards = 1] always maps to [0].  Both the on-disk layout of
    {!open_sharded} and the request router in [Server.Engine] use this
    function, which is what makes them agree.
    @raise Invalid_argument if [shards < 1]. *)

val shard_dir_name : int -> string
(** [shard_dir_name i] is ["shard-<i>"] — the subdirectory of a sharded
    catalog root that holds shard [i]'s snapshots ([docs/SHARDING.md]
    documents the layout). *)

val open_sharded :
  ?config:config -> shards:int -> string -> t array * (string * string) list
(** [open_sharded ~shards dir] opens [dir] as a hash-partitioned catalog
    of [shards] independent services — element [i] of the returned array
    owns the entries with [{!shard_of_name} ~shards name = i], persisted
    under [dir/shard-<i>/], with its own LRU cache (so total cache
    capacity is [config.capacity] per shard).  Before opening, the
    on-disk layout is migrated in place: snapshot files found in the flat
    v1 layout (or in the shard directories of a different previous shard
    count) are renamed into the directory the requested partitioning
    assigns them, so the same [dir] can be served at any shard count and
    re-opened at another.  [shards = 1] is exactly {!open_dir} on the
    flat directory — same layout, same service, bit-identical serving —
    with any shard-*/ files migrated back flat first.  The skip list
    aggregates migration failures and every shard's load skips, each
    tagged with its shard.
    @raise Invalid_argument if [shards < 1] or on a non-positive
    [config] field.
    @raise Sys_error if [dir] cannot be created or read. *)

val dir : t -> string
(** The snapshot directory this service persists to. *)

val config : t -> config
(** The configuration the service was opened with. *)

val names : t -> string list
(** Names of every indexed entry, sorted. *)

val mem : t -> string -> bool
(** Whether an entry of that name is indexed (resident or on disk only). *)

type info = {
  name : string;
  kind : Selest.Stored.kind;  (** range, rect or join *)
  spec : string;  (** compact spec syntax the entry was built with *)
  provenance : string option;
      (** where the spec came from, when recorded — e.g. the advisor's
          recommendation line behind [catalog build --spec auto].
          Persisted in the snapshot and preserved across rebuilds and
          adaptive swaps *)
  cells : int;
      (** summary size: grid cells (range), [bins_x * bins_y] (rect), or
          total equi-depth buckets across both relations (join) *)
  domain : float * float;
      (** estimation domain of the summary (the x-axis domain for rect
          entries, the shared attribute domain for join entries) *)
  domain_y : (float * float) option;  (** rect entries: the y-axis domain *)
  inserts : int;  (** records changed since the summary was built *)
  stale : bool;  (** past the insert budget, or explicitly invalidated *)
  cached : bool;  (** currently resident in the LRU cache *)
}

val info : t -> string -> info option
(** Metadata of one entry ([None] if unknown); no cache activity. *)

val infos : t -> info list
(** {!info} for every entry, sorted by name. *)

val build :
  ?provenance:string ->
  t ->
  name:string ->
  spec:string ->
  domain:float * float ->
  sample:float array ->
  (info, string) result
(** [build t ~name ~spec ~domain ~sample] fits [spec] (compact
    [Selest.Estimator.spec_of_string] syntax) on the sample, reduces it to
    a [config.cells]-cell summary, snapshots it atomically and caches it.
    An existing entry of the same name is replaced and its staleness
    reset.  [provenance] (newline-free) records where the spec came from
    — the advisor passes its recommendation line — and rides along in the
    snapshot from then on.  [Error] on an empty or newline-containing
    name, an unparseable spec, or estimator-construction failure (empty
    sample, empty domain). *)

val build_rect :
  t ->
  name:string ->
  spec:string ->
  domain_x:float * float ->
  domain_y:float * float ->
  points:(float * float) array ->
  (info, string) result
(** [build_rect t ~name ~spec ~domain_x ~domain_y ~points] builds a 2-D
    grid summary ([Selest.Stored.rect_of_points]) from a point sample and
    installs it exactly as {!build} installs a range entry.  [spec] uses
    the [Selest.Stored.rect_spec_of_string] syntax
    ([hist2d], [hist2d:B], [hist2d:BXxBY]).  Served rectangle queries
    against the entry are bit-identical to [Multidim.Hist2d] on the same
    sample — both delegate to the same [Selest.Stored] arithmetic.
    [Error] on a bad name or spec, an empty sample or an empty domain. *)

val build_join :
  t ->
  name:string ->
  spec:string ->
  domain:float * float ->
  n_r:int ->
  n_s:int ->
  sample_r:float array ->
  sample_s:float array ->
  (info, string) result
(** [build_join t ~name ~spec ~domain ~n_r ~n_s ~sample_r ~sample_s]
    builds a join summary ([Selest.Stored.join_of_samples]: one equi-depth
    histogram per relation plus the retained samples) and installs it.
    [spec] uses the [Selest.Stored.join_spec_of_string] syntax ([edh],
    [edh:BUCKETS]).  Served join estimates are bit-identical to
    [Join.Ineqjoin.estimate] on the same summary.  [Error] on a bad name
    or spec, empty samples, non-positive sizes or an empty domain. *)

val rebuild : t -> name:string -> sample:float array -> (info, string) result
(** Re-ANALYZE: {!build} with the entry's recorded spec and domain on a
    fresh sample, clearing its staleness.  [Error] on an unknown name, or
    on a rect/join entry (their samples are not one float array; rebuild
    those with {!build_rect} / {!build_join}, or let the adaptive tick
    resample them). *)

val record_inserts : t -> name:string -> int -> (unit, string) result
(** Tell the catalog the entry's relation changed by that many records
    (negative for deletes; magnitudes accumulate, mirroring
    [Selest.Maintenance]).  Once the total reaches
    [config.rebuild_after_inserts] the entry turns stale — it keeps
    answering, flagged, until {!rebuild}.  The count is persisted, so
    staleness survives restarts.  [Error] on an unknown name. *)

val sync_maintenance : t -> name:string -> Selest.Maintenance.t -> (unit, string) result
(** Mirror a live [Selest.Maintenance] wrapper's
    [Selest.Maintenance.changed_count] into the entry's staleness tracker:
    the wrapper owns the fitted estimator and sees the traffic; the
    catalog serves the summary and needs its update counts.  Overwrites
    the recorded insert count with the wrapper's.  [Error] on an unknown
    name. *)

val invalidate : t -> string -> (unit, string) result
(** Force-stale an entry: marks it (persisted) and drops its cached copy,
    so the next access reloads the snapshot and reports stale until
    {!rebuild}.  [Error] on an unknown name. *)

val drop : t -> string -> (unit, string) result
(** Remove an entry entirely: index, cache and snapshot file.  [Error] on
    an unknown name. *)

val answer : ?jobs:int -> t -> (string * float * float) array -> float array
(** [answer t requests] evaluates a batch of [(name, a, b)] range queries
    and returns their selectivities in request order.  Each distinct name
    is resolved once per batch — a cache hit, or a miss that loads the
    snapshot and caches it — then the per-request evaluation runs on
    [jobs] domains via [Parallel.Map.map]; results are bit-identical for
    every [jobs] value.  @raise Invalid_argument on an unknown name, an
    unreadable snapshot, or [jobs < 1]. *)

val answer_into :
  t ->
  n:int ->
  names:string array ->
  a:float array ->
  b:float array ->
  out:float array ->
  unit
(** [answer_into t ~n ~names ~a ~b ~out] answers queries
    [Q(a.(i), b.(i))] against entry [names.(i)] into [out.(i)] for
    [0 <= i < n] — the structure-of-arrays twin of {!answer}, and the
    serving engine's fast path.  Results are bit-identical to {!answer}
    (both reduce to the same per-cell probe; see
    [Selest.Stored.selectivity_into]).  Each maximal run of equal
    adjacent names is resolved once, so callers should keep same-entry
    queries contiguous; at steady state (summaries resident, buffers
    caller-owned) the call allocates nothing.  Evaluation is sequential
    in the calling thread — the batch kernel is cheap enough that the
    fan-out of {!answer} only pays off for cold mixes.
    @raise Invalid_argument on an unknown name, an unreadable snapshot,
    [n < 0], or arrays shorter than [n]. *)

val answer_one : t -> name:string -> a:float -> b:float -> (float, string) result
(** Single-query {!answer} with an [Error] instead of an exception. *)

val answer_rect :
  t ->
  name:string ->
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  (float, string) result
(** Selectivity of a closed rectangle against a rect entry: one cache
    access, then [Selest.Stored.rect_selectivity] — the function
    [Multidim.Hist2d.selectivity] is an alias of, so the served answer is
    bit-identical to the direct library call.  [Error] on an unknown
    name, a non-rect entry, or an unreadable snapshot. *)

val answer_join :
  t -> name:string -> pred:Selest.Stored.join_pred -> (float, string) result
(** Estimated size of [R JOIN_pred S] from a join entry
    ([Selest.Stored.join_estimate], the function [Join.Ineqjoin.estimate]
    is an alias of).  [Error] on an unknown name, a non-join entry, or an
    unreadable snapshot. *)

val cache_stats : t -> Lru.stats
(** Lifetime hit/miss/eviction counts of the summary cache. *)

(** {1 Adaptivity}

    The streaming half of the catalog: once {!enable_adaptive} is called,
    the service accepts {!insert}ed attribute values into a per-entry
    reservoir sample ({!Online.Reservoir}) and {!observe}d true
    selectivities into a per-entry ST-histogram
    ({!Feedback.Adaptive}), and {!adaptive_tick} turns both into
    atomically swapped summary versions — a background resample rebuild
    when the insert budget trips, a synchronous feedback refresh every
    [refresh_after_observes] observations.  Reads stay allocation-free
    and bit-identical between swaps; the full policy is documented in
    [docs/ADAPTIVITY.md].

    Like the rest of the service these functions are single-owner: the
    serving engine confines them to the entry's shard dispatcher.  Only
    the rebuild worker launched by {!adaptive_tick} runs on its own
    thread, and it touches nothing but its private sample copy. *)

type adaptive_config = {
  reservoir_capacity : int;
      (** values retained per entry for resample rebuilds (default 1024) *)
  min_rebuild_sample : int;
      (** don't launch a resample rebuild below this reservoir size
          (default 64) *)
  refresh_after_observes : int;
      (** bake the feedback histogram into a served summary every this
          many observations (default 256) *)
  learning_rate : float;
      (** ST-histogram error absorption per observation, in (0, 1]
          (default 0.5) *)
  adaptive_seed : int64;
      (** reservoir PRNG seed; each entry derives its own by xoring in a
          stable hash of its name (default 0xada971fe55aa) *)
}

val default_adaptive_config : adaptive_config
(** The defaults above; sizing guidance in [docs/ADAPTIVITY.md]. *)

val enable_adaptive : ?config:adaptive_config -> t -> unit
(** Switch the service into adaptive mode.  Off by default — a
    non-adaptive service serves byte-for-byte what a pre-adaptivity
    server did, and {!insert}/{!observe} return [Error].
    @raise Invalid_argument on a non-positive [config] field, a
    [learning_rate] outside (0, 1], or if already enabled. *)

val adaptive_enabled : t -> bool
(** Whether {!enable_adaptive} has been called. *)

val insert : t -> name:string -> float array -> (int * int, string) result
(** [insert t ~name values] streams freshly inserted records of the
    entry's relation into its reservoir(s) and advances its staleness
    count (the same budget {!record_inserts} spends).  What a value means
    is kind-specific: range entries take attribute values; rect entries
    take flattened [(x, y)] pairs ([x0; y0; x1; y1; ...] — even length
    required), kept paired through reservoir sampling by two same-seed
    lockstep reservoirs; join entries take R-side attribute values (the
    adaptive rebuild re-buckets R from the reservoir and keeps the
    summarized S side).  The staleness count advances by the number of
    records — pairs for rect entries, values otherwise.  Returns
    [(retained, seen)] — current reservoir occupancy and lifetime offered
    count.  The stale flag is persisted when it trips; sub-budget counts
    live in memory only, so a kill loses at most one budget of progress.
    [Error] on an unknown entry, a non-finite value, an odd-length rect
    frame, or when adaptivity is disabled. *)

val observe :
  t -> name:string -> a:float -> b:float -> actual:float -> (float, string) result
(** [observe t ~name ~a ~b ~actual] feeds back the true selectivity of
    range [[a, b]] as measured by the caller's executed query, refining
    the entry's ST-histogram where the workload actually queries.
    Returns the refined in-memory estimate for the same range — it
    converges toward [actual] over repeated observations, while the
    {e served} summary only changes at the next refresh swap.  Range
    entries only — rect and join summaries carry no ST-histogram, so
    their adaptivity is reservoir-rebuild only.  [Error] on an unknown
    or non-range entry, [actual] outside [0, 1], non-finite bounds, or
    when adaptivity is disabled. *)

val adaptive_tick : ?wake:(unit -> unit) -> t -> int
(** One step of the maintenance loop; the serving engine calls this
    between batches.  In order: (1) if a background rebuild has
    finished, join it and atomically swap its summary in (cache,
    metadata and snapshot move together; the entry's staleness resets
    and its feedback histogram reseeds from the new version); (2) bake
    every feedback histogram with [refresh_after_observes] pending
    observations into a swapped summary, synchronously; (3) if no
    rebuild is in flight, launch one worker thread for the first stale
    entry (sorted order) whose reservoir holds at least
    [min_rebuild_sample] values.  [wake] is handed to that worker and
    fired (from the worker thread) when its result is ready, so an idle
    caller can re-tick promptly; the default does nothing — callers may
    simply tick periodically.  Returns the number of summaries swapped
    by this call.  A rebuild whose estimator rejects the sample parks
    the entry ([Error] recorded, visible in {!adaptive_stats}) until
    fresh inserts arrive, rather than hot-looping.  Never raises. *)

val adaptive_drain : t -> unit
(** Retire the adaptive runtime on the owner's way out: join any
    in-flight rebuild worker, then run a final {!adaptive_tick} so its
    result is swapped in (and persisted) rather than discarded.  A
    no-op when adaptivity is disabled or nothing is pending. *)

type adaptive_stats = {
  tracked_entries : int;  (** entries with live adaptive state *)
  sampled_values : int;  (** lifetime values offered across reservoirs *)
  observations : int;  (** feedback observations absorbed *)
  rebuild_in_flight : bool;  (** a background rebuild worker is running *)
  last_rebuild_error : string option;
      (** first parked rebuild failure, if any *)
}

val adaptive_stats : t -> adaptive_stats
(** Snapshot of the adaptive runtime (all zeros when disabled).  Swap
    counts are on the telemetry side: [catalog_adaptive_swaps_total]. *)
