(* Hashtbl + circular doubly-linked list through a sentinel node: O(1)
   find/add/remove, list order is recency (sentinel.next = MRU,
   sentinel.prev = LRU).  The circular representation exists for the
   serving fast path: relinking a node on a hit rewires four non-option
   pointers and allocates nothing, where an option-based list would box a
   [Some] per promotion.  The sentinel is created with the first insert;
   its [value] field keeps that first value as an inert placeholder (one
   value of bounded retention, never returned to a caller). *)

type 'a node = {
  key : string; (* "" for the sentinel *)
  mutable value : 'a;
  mutable prev : 'a node; (* towards MRU *)
  mutable next : 'a node; (* towards LRU *)
}

type stats = { hits : int; misses : int; evictions : int }

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable sentinel : 'a node option; (* None until the first add *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Telemetry.Metrics.counter;
  m_misses : Telemetry.Metrics.counter;
  m_evictions : Telemetry.Metrics.counter;
}

let create ?(cache_name = "default") ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let labels = [ ("cache", cache_name) ] in
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    sentinel = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    m_hits =
      Telemetry.Metrics.counter "catalog_cache_hits_total" ~labels
        ~help:"Cache lookups answered from a resident entry";
    m_misses =
      Telemetry.Metrics.counter "catalog_cache_misses_total" ~labels
        ~help:"Cache lookups that found no resident entry";
    m_evictions =
      Telemetry.Metrics.counter "catalog_cache_evictions_total" ~labels
        ~help:"Entries dropped to stay within capacity";
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

(* Detach [n] from the recency ring (leaves n.prev/n.next dangling). *)
let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front s n =
  n.next <- s.next;
  n.prev <- s;
  s.next.prev <- n;
  s.next <- n

(* A resident node implies the sentinel exists; this is the only way the
   invariant could break, hence the assert. *)
let sentinel_exn t =
  match t.sentinel with
  | Some s -> s
  | None -> assert false

let promote t n =
  let s = sentinel_exn t in
  if s.next != n then begin
    unlink n;
    push_front s n
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    Telemetry.Metrics.incr t.m_hits;
    promote t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.Metrics.incr t.m_misses;
    None

(* Allocation-free twin of [find]: the served estimate path resolves a
   summary per run of a merged batch, and a resident hit must not box an
   option per run.  [Hashtbl.find]'s [Not_found] is a preallocated
   constant, so the miss path allocates nothing either. *)
let find_exn t key =
  match Hashtbl.find t.table key with
  | n ->
    t.hits <- t.hits + 1;
    Telemetry.Metrics.incr t.m_hits;
    promote t n;
    n.value
  | exception Not_found ->
    t.misses <- t.misses + 1;
    Telemetry.Metrics.incr t.m_misses;
    raise Not_found

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key)

let evict_lru t s =
  let n = s.prev in
  if n != s then begin
    unlink n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1;
    Telemetry.Metrics.incr t.m_evictions
  end

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.value <- value;
    promote t n
  | None ->
    let s =
      match t.sentinel with
      | Some s -> s
      | None ->
        let rec s = { key = ""; value; prev = s; next = s } in
        t.sentinel <- Some s;
        s
    in
    if Hashtbl.length t.table >= t.cap then evict_lru t s;
    let n = { key; value; prev = s; next = s } in
    Hashtbl.replace t.table key n;
    push_front s n

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
    unlink n;
    Hashtbl.remove t.table key

let keys t =
  match t.sentinel with
  | None -> []
  | Some s ->
    let rec go acc n = if n == s then List.rev acc else go (n.key :: acc) n.next in
    go [] s.next

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
