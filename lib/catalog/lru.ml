(* Hashtbl + doubly-linked list: O(1) find/add/remove, list order is
   recency (head = MRU, tail = LRU). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* towards MRU *)
  mutable next : 'a node option; (* towards LRU *)
}

type stats = { hits : int; misses : int; evictions : int }

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Telemetry.Metrics.counter;
  m_misses : Telemetry.Metrics.counter;
  m_evictions : Telemetry.Metrics.counter;
}

let create ?(cache_name = "default") ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let labels = [ ("cache", cache_name) ] in
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    m_hits =
      Telemetry.Metrics.counter "catalog_cache_hits_total" ~labels
        ~help:"Cache lookups answered from a resident entry";
    m_misses =
      Telemetry.Metrics.counter "catalog_cache_misses_total" ~labels
        ~help:"Cache lookups that found no resident entry";
    m_evictions =
      Telemetry.Metrics.counter "catalog_cache_evictions_total" ~labels
        ~help:"Entries dropped to stay within capacity";
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

(* Detach [n] from the recency list (leaves n.prev/n.next dangling). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev

let is_head t n = match t.head with Some h -> h == n | None -> false

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    Telemetry.Metrics.incr t.m_hits;
    if not (is_head t n) then begin
      unlink t n;
      push_front t n
    end;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.Metrics.incr t.m_misses;
    None

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key)

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1;
    Telemetry.Metrics.incr t.m_evictions

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.value <- value;
    if not (is_head t n) then begin
      unlink t n;
      push_front t n
    end
  | None ->
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table key

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
