(** Online approximate aggregation (the paper's future-work item 2, citing
    Hellerstein et al.'s online aggregation [6]).

    Sample values stream in batches, as an online executor would deliver
    them; at any point the aggregator answers range-count questions with
    both the pure-sampling estimate (with its CLT confidence interval) and
    the kernel estimate built from the samples seen so far.  The kernel
    estimator is refitted lazily — at most once per batch — with the
    normal-scale bandwidth of the current sample.

    Scope note: this module keeps {e every} value it is handed, which is
    the right trade for a progress-bar aggregation over one query's
    lifetime.  Its bounded-memory sibling {!Online.Reservoir} retains a
    fixed-size uniform sample of an unbounded stream, and is what the
    adaptive serving loop builds rebuilds from ([docs/ADAPTIVITY.md]);
    the two compose — an executor can feed the same batches to both. *)

type t

val create :
  ?kernel:Kernels.Kernel.t ->
  ?boundary:Kde.Estimator.boundary_policy ->
  domain:float * float ->
  unit ->
  t
(** [create ~domain ()] starts an empty aggregator (Epanechnikov kernel
    and boundary-kernel treatment by default).
    @raise Invalid_argument on an empty domain. *)

val add : t -> float array -> unit
(** [add t batch] appends a batch of sampled attribute values. *)

val sample_size : t -> int
(** Total number of sampled values received so far across all batches. *)

type estimate = {
  kernel_selectivity : float;  (** the kernel estimate, in [[0, 1]] *)
  sampling_selectivity : float;  (** fraction of samples in range *)
  ci_halfwidth : float;
      (** 95% CLT half-width of the sampling estimate (selectivity units);
          1 when no samples have arrived *)
  n : int;  (** samples used *)
}

val estimate : t -> a:float -> b:float -> estimate
(** Current answer for the range [[a, b]].
    @raise Invalid_argument before any sample has arrived. *)

val estimated_count : estimate -> n_records:int -> float * float * float
(** [(kernel count, sampling CI low, sampling CI high)] scaled to a
    relation of [n_records] records, the form a progress bar displays. *)
