type t = {
  rng : Prng.Splitmix64.t;
  buf : float array;
  mutable filled : int;
  mutable seen : int;
}

let create ?(seed = 0x5eedbeef1234L) ~capacity () =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
  { rng = Prng.Splitmix64.create seed; buf = Array.make capacity 0.0; filled = 0; seen = 0 }

let capacity t = Array.length t.buf
let size t = t.filled
let seen t = t.seen

(* Algorithm R (Vitter 1985): the first [capacity] values fill the buffer;
   the i-th value thereafter replaces a uniformly chosen slot with
   probability capacity/i.  One [next_below] call per offered value keeps
   the stream position a pure function of [seen], so two reservoirs with
   the same seed fed the same values are identical. *)
let add t v =
  t.seen <- t.seen + 1;
  let cap = Array.length t.buf in
  if t.filled < cap then begin
    t.buf.(t.filled) <- v;
    t.filled <- t.filled + 1
  end
  else begin
    let j = Prng.Splitmix64.next_below t.rng t.seen in
    if j < cap then t.buf.(j) <- v
  end

let add_array t vs = Array.iter (add t) vs
let sample t = Array.sub t.buf 0 t.filled
