(** Fixed-capacity uniform reservoir sample over a value stream.

    Vitter's Algorithm R: the reservoir holds a uniform sample (without
    replacement) of every value offered so far, using O(capacity) memory
    and one PRNG draw per offered value.  The adaptive serving path keeps
    one reservoir per catalog entry and rebuilds the entry's stored
    summary from {!sample} when the staleness budget trips — see
    [docs/ADAPTIVITY.md] for sizing guidance.

    Determinism: the generator is a private {!Prng.Splitmix64} advanced
    exactly once per offered value once the reservoir is full, so the
    retained sample is a pure function of [(seed, offered stream)] —
    independent of batch boundaries.  Two reservoirs with the same seed
    fed the same values element-for-element hold identical samples. *)

type t
(** Mutable reservoir state.  Not thread-safe; the serving engine confines
    each reservoir to its shard's dispatcher domain. *)

val create : ?seed:int64 -> capacity:int -> unit -> t
(** [create ~capacity ()] is an empty reservoir retaining at most
    [capacity] values.  [seed] (default [0x5eedbeef1234]) seeds the
    private generator; vary it per entry to decorrelate replacement
    decisions across entries.
    @raise Invalid_argument if [capacity <= 0]. *)

val add : t -> float -> unit
(** [add t v] offers one value to the reservoir. *)

val add_array : t -> float array -> unit
(** [add_array t vs] offers [vs] in order; equivalent to [Array.iter (add t) vs]. *)

val capacity : t -> int
(** Maximum number of retained values, as passed to {!create}. *)

val size : t -> int
(** Number of values currently retained ([min capacity seen]). *)

val seen : t -> int
(** Total number of values offered so far (retained or not). *)

val sample : t -> float array
(** Fresh copy of the retained sample, length {!size}.  Order is an
    implementation detail (slot order, not arrival order). *)
