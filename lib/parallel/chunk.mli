(** Deterministic partitioning of index ranges into contiguous chunks.

    Chunk boundaries are a pure function of the requested chunk count (or
    chunk size) and the array length — never of the number of workers or of
    scheduling order.  This is the keystone of the library's reproducibility
    guarantee: work distributed over any number of domains is grouped, and
    later re-combined, along identical boundaries, so floating-point
    reductions associate identically on every run. *)

val ranges : chunks:int -> length:int -> (int * int) array
(** [ranges ~chunks ~length] splits the index interval [[0, length)] into at
    most [chunks] contiguous half-open ranges [(start, stop)], returned in
    ascending order.  The split is balanced: range sizes differ by at most
    one, with the larger ranges first.  [chunks] is clamped to
    [[1, length]]; an empty interval yields [[||]].

    @raise Invalid_argument if [chunks < 1] or [length < 0]. *)

val ranges_of_size : chunk_size:int -> length:int -> (int * int) array
(** [ranges_of_size ~chunk_size ~length] splits [[0, length)] into
    consecutive ranges of exactly [chunk_size] indices (the final range may
    be shorter).  Because the boundaries depend only on [chunk_size] and
    [length], a reduction folded along them is bit-identical regardless of
    how many workers execute the chunks.

    @raise Invalid_argument if [chunk_size < 1] or [length < 0]. *)
