let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Parallel.Map: jobs must be >= 1"

let unsome = function Some v -> v | None -> assert false

(* Spawning a domain costs orders of magnitude more than dispatching a
   task, so one pool is cached for the whole process and reused across
   calls.  The pool is single-owner: a nested or concurrent map (the cache
   is busy) falls back to a transient pool rather than sharing it. *)
let cache_mutex = Mutex.create ()
let cached : (int * Pool.t) option ref = ref None
let cache_busy = ref false
let cleanup_registered = ref false

let release_cache () =
  Mutex.lock cache_mutex;
  cache_busy := false;
  Mutex.unlock cache_mutex

let with_cached_pool ~jobs f =
  let acquired =
    Mutex.lock cache_mutex;
    let pool =
      if !cache_busy then None
      else begin
        cache_busy := true;
        if not !cleanup_registered then begin
          cleanup_registered := true;
          (* Shut idle workers down on exit so the process never leaves
             domains blocked on the pool's condition variable. *)
          at_exit (fun () ->
              match !cached with
              | Some (_, pool) when not !cache_busy ->
                cached := None;
                Pool.shutdown pool
              | Some _ | None -> ())
        end;
        match !cached with
        | Some (j, pool) when j = jobs -> Some pool
        | (Some _ | None) as stale ->
          (match stale with
          | Some (_, old) -> Pool.shutdown old
          | None -> ());
          let pool = Pool.create ~jobs in
          cached := Some (jobs, pool);
          Some pool
      end
    in
    Mutex.unlock cache_mutex;
    pool
  in
  match acquired with
  | Some pool -> Fun.protect ~finally:release_cache (fun () -> f pool)
  | None -> Pool.with_pool ~jobs f

(* Tasks are contiguous index ranges, a few per worker for load balance.
   Each element writes its own slot, so the chunking affects only
   scheduling, never the result. *)
let pooled_mapi ~jobs f a =
  let n = Array.length a in
  let out = Array.make n None in
  let ranges = Chunk.ranges ~chunks:(jobs * 4) ~length:n in
  with_cached_pool ~jobs (fun pool ->
      Pool.run pool ~total:(Array.length ranges) (fun c ->
          let start, stop = ranges.(c) in
          for i = start to stop - 1 do
            out.(i) <- Some (f i a.(i))
          done));
  Array.map unsome out

let mapi ?jobs f a =
  let jobs = min (resolve_jobs jobs) (Array.length a) in
  if jobs <= 1 then Array.mapi f a else pooled_mapi ~jobs f a

let map ?jobs f a = mapi ?jobs (fun _ x -> f x) a

let map_reduce ?jobs ?(chunk_size = 1024) ~map:f ~combine ~init a =
  if chunk_size < 1 then invalid_arg "Parallel.Map.map_reduce: chunk_size must be >= 1";
  let n = Array.length a in
  (* Chunk boundaries are fixed by [chunk_size] alone so that the fold
     below associates identically for every [jobs] value. *)
  let ranges = Chunk.ranges_of_size ~chunk_size ~length:n in
  let chunks = Array.length ranges in
  let fold_chunk c =
    let start, stop = ranges.(c) in
    let acc = ref (f a.(start)) in
    for i = start + 1 to stop - 1 do
      acc := combine !acc (f a.(i))
    done;
    !acc
  in
  let jobs = min (resolve_jobs jobs) chunks in
  let partials =
    if jobs <= 1 then Array.init chunks fold_chunk
    else begin
      let out = Array.make chunks None in
      with_cached_pool ~jobs (fun pool ->
          Pool.run pool ~total:chunks (fun c -> out.(c) <- Some (fold_chunk c)));
      Array.map unsome out
    end
  in
  Array.fold_left combine init partials
