(** A fixed-size pool of worker domains (OCaml 5 [Domain]s).

    A pool of capacity [jobs] owns [jobs - 1] long-lived worker domains; the
    caller of {!run} acts as the [jobs]-th worker, so a pool of capacity 1
    spawns no domains at all and degenerates to plain sequential execution.
    Worker domains block on a condition variable between jobs — an idle pool
    consumes no CPU.

    Tasks inside one {!run} call are distributed by work stealing over an
    atomic counter, so scheduling is non-deterministic; determinism of
    results is recovered one level up (see {!Map}) by keying every task to a
    fixed output slot.  The pool is single-owner: calls to {!run} must not
    overlap.  Exceptions raised by tasks are caught in the worker, and the
    first one recorded is re-raised (with its backtrace) in the caller after
    every task has finished.

    {b Telemetry.}  When {!Telemetry.Control.is_enabled}, the pool counts
    submissions ([parallel_pool_runs_total]), executed tasks (total and per
    worker slot), steals (tasks run by a spawned domain rather than the
    caller), and worker idle nanoseconds, and records a ["pool.run"] span
    per submission — all lock-free, without perturbing scheduling or
    results.  Names and units: [docs/TELEMETRY.md]. *)

type t
(** A pool handle.  Obtain with {!create}, release with {!shutdown}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The pool's capacity: worker domains plus the calling domain. *)

val run : t -> total:int -> (int -> unit) -> unit
(** [run pool ~total f] executes [f 0], [f 1], ..., [f (total - 1)], spread
    across the pool's domains and the calling domain, and returns once all
    [total] tasks have completed.  Tasks are claimed dynamically in index
    order but may finish in any order; [f] must therefore tolerate running
    on any domain, and concurrent invocations of [f] must not race on shared
    state.  If one or more tasks raise, the remaining tasks still execute,
    and the first recorded exception is re-raised in the caller.
    @raise Invalid_argument if [total < 0]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Using {!run} after
    [shutdown] raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on
    exit, whether [f] returns or raises. *)
