(* Telemetry (names in docs/TELEMETRY.md): every task claim counts toward
   the claiming worker slot, tasks landing on a spawned worker domain count
   as steals (the caller submitted them, another domain ran them), and
   workers accumulate the nanoseconds they spend parked between jobs.  All
   of it is atomic-increment-only and gated on the global telemetry flag,
   so the disabled-path cost per task is one atomic load. *)
let m_runs =
  Telemetry.Metrics.counter "parallel_pool_runs_total" ~help:"Pool.run invocations"

let m_tasks =
  Telemetry.Metrics.counter "parallel_pool_tasks_total"
    ~help:"Tasks executed, across all pools and domains"

let m_steals =
  Telemetry.Metrics.counter "parallel_pool_steals_total"
    ~help:"Tasks executed by a spawned worker domain rather than the submitting caller"

let m_idle_ns =
  Telemetry.Metrics.counter "parallel_pool_idle_ns_total"
    ~help:"Nanoseconds worker domains spent parked waiting for a job"

let m_jobs = Telemetry.Metrics.gauge "parallel_pool_jobs" ~help:"Capacity of the last pool created"

let slot_counter slot =
  Telemetry.Metrics.counter "parallel_pool_worker_tasks_total"
    ~labels:[ ("worker", string_of_int slot) ]
    ~help:"Tasks executed by each worker slot (0 = the submitting caller)"

type job = {
  f : int -> unit;
  next : int Atomic.t;  (* next task index to claim *)
  completed : int Atomic.t;
  total : int;
}

type t = {
  size : int;  (* worker domains; capacity is size + 1 *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable epoch : int;  (* bumped once per submitted job *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
  task_counters : Telemetry.Metrics.counter array;  (* per slot; slot 0 = caller *)
}

let jobs t = t.size + 1

(* Claim and execute tasks until the job's counter is exhausted.  A task
   that raises still counts as completed: [run] must not return while any
   [f i] is in flight, and the exception is surfaced there instead.
   [slot] is the executing worker's index (0 = the caller of [run]). *)
let drain t ~slot job =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.total then continue_ := false
    else begin
      if Telemetry.Control.is_enabled () then begin
        Telemetry.Metrics.incr m_tasks;
        Telemetry.Metrics.incr t.task_counters.(slot);
        if slot > 0 then Telemetry.Metrics.incr m_steals
      end;
      (try job.f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some (e, bt);
         Mutex.unlock t.mutex);
      if 1 + Atomic.fetch_and_add job.completed 1 = job.total then begin
        (* Last task overall: wake the caller waiting in [run].  Taking the
           mutex orders this broadcast against the caller's wait. *)
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let rec worker t ~slot last_epoch =
  let idle_from = if Telemetry.Control.is_enabled () then Telemetry.Control.now_ns () else 0 in
  Mutex.lock t.mutex;
  (* Wait for a job this worker has not seen yet.  [t.job = None] covers the
     worker that slept through an entire job: the epoch moved on, but there
     is nothing to drain until the next submission. *)
  while (not t.stopped) && (t.epoch = last_epoch || t.job = None) do
    Condition.wait t.work_ready t.mutex
  done;
  if idle_from > 0 then
    Telemetry.Metrics.add m_idle_ns (Telemetry.Control.now_ns () - idle_from);
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    drain t ~slot job;
    worker t ~slot epoch
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      size = jobs - 1;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      failure = None;
      stopped = false;
      domains = [||];
      task_counters = Array.init jobs slot_counter;
    }
  in
  Telemetry.Metrics.set m_jobs (float_of_int jobs);
  t.domains <-
    Array.init t.size (fun i -> Domain.spawn (fun () -> worker t ~slot:(i + 1) 0));
  t

let run t ~total f =
  if total < 0 then invalid_arg "Pool.run: total must be >= 0";
  if total > 0 then begin
    let span_from = Telemetry.Span.start_ns () in
    Telemetry.Metrics.incr m_runs;
    let job = { f; next = Atomic.make 0; completed = Atomic.make 0; total } in
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.failure <- None;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* The caller is a worker too; with [size = 0] it does all the work. *)
    drain t ~slot:0 job;
    Mutex.lock t.mutex;
    while Atomic.get job.completed < total do
      Condition.wait t.work_done t.mutex
    done;
    let failure = t.failure in
    t.job <- None;
    t.failure <- None;
    Mutex.unlock t.mutex;
    Telemetry.Span.record ~start_ns:span_from "pool.run";
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not was_stopped then Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
