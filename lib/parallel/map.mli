(** Deterministic data-parallel array combinators on top of {!Pool}.

    Every function takes a [?jobs] knob: [1] means run sequentially in the
    calling domain (no domains are spawned), [k > 1] distributes the work
    over a pool of [k] domains.  The default is {!default_jobs}, one worker
    per recommended domain short of saturating the machine.

    Domains are expensive to spawn, so one pool is cached per process and
    reused by subsequent calls with the same [jobs]; changing [jobs]
    replaces it, and nested or concurrent calls fall back to a transient
    pool (the cached one is single-owner).  The cached pool's workers sleep
    between calls and are shut down via [at_exit].

    Determinism contract: for a pure [f], every function returns the same
    value — bit-for-bit, floating point included — for every value of
    [jobs] and every scheduling of the workers.  {!map} achieves this by
    keying each element to its output slot; {!map_reduce} by folding chunk
    results in ascending chunk order along boundaries that depend only on
    [chunk_size] (never on [jobs]). *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the rest of the process, degrade to sequential on a single-core host. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] is [Array.map f a], evaluated by [jobs] domains.
    Results are written to their sequential positions, so the output is
    identical to [Array.map f a] for pure [f] regardless of [jobs].  If any
    application of [f] raises, all scheduled applications still run and the
    first recorded exception is re-raised ([jobs = 1] instead raises
    eagerly, like [Array.map]).
    @raise Invalid_argument if [jobs < 1]. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map] with the element index, mirroring [Array.mapi]. *)

val map_reduce :
  ?jobs:int ->
  ?chunk_size:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** [map_reduce ~jobs ~chunk_size ~map ~combine ~init a] computes

    {v combine (... (combine init c_0) ...) c_{k-1} v}

    where [c_i] is the left-to-right [combine]-fold of [map x] over the
    [i]-th chunk of [a], chunks being the consecutive [chunk_size]-element
    slices of [a] (default [1024]; the last chunk may be shorter).  Chunk
    boundaries depend only on [chunk_size] and [Array.length a], so the
    association order — hence the exact floating-point result — is the same
    for every [jobs].  [combine] must be associative up to that fixed
    grouping for the result to be meaningful; it runs in the calling domain.
    @raise Invalid_argument if [jobs < 1] or [chunk_size < 1]. *)
