let ranges ~chunks ~length =
  if chunks < 1 then invalid_arg "Chunk.ranges: chunks must be >= 1";
  if length < 0 then invalid_arg "Chunk.ranges: length must be >= 0";
  if length = 0 then [||]
  else begin
    let chunks = min chunks length in
    let base = length / chunks and extra = length mod chunks in
    (* The first [extra] ranges carry one additional index. *)
    let start = ref 0 in
    Array.init chunks (fun c ->
        let size = base + if c < extra then 1 else 0 in
        let s = !start in
        start := s + size;
        (s, s + size))
  end

let ranges_of_size ~chunk_size ~length =
  if chunk_size < 1 then invalid_arg "Chunk.ranges_of_size: chunk_size must be >= 1";
  if length < 0 then invalid_arg "Chunk.ranges_of_size: length must be >= 0";
  let chunks = (length + chunk_size - 1) / chunk_size in
  Array.init chunks (fun c ->
      let s = c * chunk_size in
      (s, min length (s + chunk_size)))
