(** Integer-domain datasets.

    A dataset models one metric attribute of a relation, following the
    paper's test environment: values are integers in the domain
    [[0, 2^p - 1]] where [p] ("bits" here) is a parameter controlling the
    domain cardinality and hence the duplicate frequency (Section 5.1.1,
    Table 2). *)

type t
(** A named dataset: attribute values in insertion order plus a sorted copy
    that serves the exact-selectivity oracle. *)

val create : name:string -> bits:int -> int array -> t
(** [create ~name ~bits values] validates that every value lies in
    [[0, 2^p - 1]] and builds the dataset (the input array is copied).
    @raise Invalid_argument on an empty array, [bits] outside [[1, 62]], or
    out-of-domain values. *)

val name : t -> string
(** The dataset's display name (Table 2 file name, or user-supplied). *)

val bits : t -> int
(** The domain parameter [p]. *)

val domain_size : t -> int
(** [2^p], the cardinality of the attribute domain. *)

val size : t -> int
(** Number of records [N]. *)

val values : t -> int array
(** Attribute values in insertion order.  The returned array is the
    dataset's own storage: do not mutate. *)

val sorted_values : t -> int array
(** Values in non-decreasing order (shared storage: do not mutate). *)

val distinct_count : t -> int
(** Number of distinct attribute values, reported in Table 2 style
    summaries. *)

val max_duplicate_frequency : t -> int
(** Largest number of records sharing one attribute value. *)

val exact_count : t -> lo:float -> hi:float -> int
(** [exact_count t ~lo ~hi] is the exact number of records [r] with
    [lo <= r <= hi] — the true query result size used as ground truth by all
    error metrics.  Accepts float bounds so that estimator and oracle see
    the identical query. *)

val exact_selectivity : t -> lo:float -> hi:float -> float
(** [exact_count] divided by [size]: the instance selectivity. *)

val sample_without_replacement : t -> Prng.Xoshiro256pp.t -> n:int -> int array
(** [sample_without_replacement t rng ~n] draws [n] record values uniformly
    without replacement (partial Fisher-Yates over record indices), matching
    the paper's sampling procedure.  @raise Invalid_argument if
    [n <= 0 || n > size t]. *)

val sample_floats : t -> Prng.Xoshiro256pp.t -> n:int -> float array
(** {!sample_without_replacement} converted to floats, the form consumed by
    the estimators. *)

val describe : t -> string
(** One-line Table 2 style summary: name, p, #records, #distinct values. *)
