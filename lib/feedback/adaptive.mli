(** Adaptive selectivity estimation from query feedback — the paper's third
    future-work item ("include the knowledge of previous queries to improve
    the quality of kernel estimators", citing Chen & Roussopoulos [1]).

    The estimator keeps a self-tuning weight vector over equal-width
    buckets, seeded from any base estimator (kernel, histogram, hybrid...).
    After a query executes, the {e observed} true selectivity is fed back:
    the estimation error is distributed over the buckets the query
    overlaps, proportionally to their current contribution (the
    ST-histogram update rule).  Estimates therefore sharpen exactly where
    the workload actually queries, without touching the data again.

    In the serving stack this module is the {e fast} adaptation channel:
    [Catalog.Service.observe] feeds each served entry's instance from the
    wire-level [observe] operation, and the maintenance tick periodically
    bakes the refined weights into an atomically swapped summary, so
    served answers stay bit-stable between swaps.  The slow channel
    (streaming inserts into a reservoir and rebuilding from the fresh
    sample) is {!Online.Reservoir}'s job.  The end-to-end policy,
    sizing guidance for [learning_rate] and the refresh period, and the
    measured drift-timeline experiment live in [docs/ADAPTIVITY.md].

    Updates are deterministic in observation order and cost O(buckets
    overlapped) with no allocation, so the serving dispatcher can absorb
    feedback inline. *)

type t

val create :
  ?buckets:int ->
  ?learning_rate:float ->
  domain:float * float ->
  base:(a:float -> b:float -> float) ->
  unit ->
  t
(** [create ~domain ~base ()] seeds [buckets] equal-width bucket weights
    (default 64) from the base estimator's bucket selectivities;
    [learning_rate] (default 0.5) scales how much of each observed error is
    absorbed per feedback.
    @raise Invalid_argument if [buckets <= 0], the domain is empty, or
    [learning_rate] outside [(0, 1]]. *)

val selectivity : t -> a:float -> b:float -> float
(** Current estimate: overlapped bucket weights, clamped to [[0, 1]]. *)

val observe : t -> a:float -> b:float -> actual:float -> unit
(** [observe t ~a ~b ~actual] feeds back the true selectivity of a query
    that has just executed.  The estimate for [[a, b]] converges toward
    [actual] geometrically (residual error scales by
    [1 - learning_rate] per repeat), while disjoint ranges keep their
    weights untouched.  Replaying an observation is convergent, not
    harmful — relevant when feedback arrives over an at-least-once
    transport.  @raise Invalid_argument unless [0 <= actual <= 1]. *)

val feedback_count : t -> int
(** Number of observations absorbed so far. *)

val total_mass : t -> float
(** Sum of bucket weights — drifts from 1 only as far as the observed
    errors demand (reported for diagnostics and tests). *)
