(* selest: command-line interface to the selectivity-estimation library.

   Subcommands:
     datasets    list the Table 2 catalog with summary statistics
     export      write a catalog dataset's values to a file (one per line)
     estimate    answer one range query with a chosen estimator vs the truth
     compare     MRE of several estimators on a size-separated query file
     advise      sweep the estimator zoo over a targeted-selectivity grid
                 and recommend a spec from the measured Pareto fronts
     sweep       MRE of the equi-width histogram across bin counts
     bandwidths  show the smoothing parameters the rules pick for a sample
     analyze     per-position error profile of an estimator (Figures 3/10)
     lookup      query-latency micro-benchmark for one estimator
     join        equi-join size estimate from per-relation samples
     catalog     persisted summary catalog: build / ls / query / invalidate
     serve       network estimate server over a catalog directory
     loadgen     closed-loop load generator against a running server

   The global --stats flag (any subcommand) enables telemetry and prints
   the recorded counters, histograms, and spans when the command exits. *)

module Est = Selest.Estimator
module E = Workload.Experiment
module G = Workload.Generate

open Cmdliner

(* --- shared arguments --- *)

let file_arg =
  let doc =
    "Data file: either a catalog name (one of: "
    ^ String.concat ", " Data.Catalog.names
    ^ ") or a path to a text file with one integer value per line."
  in
  Arg.(required & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Seed for dataset generation (deterministic)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let sample_seed_arg =
  let doc = "Seed for drawing the estimation sample." in
  Arg.(value & opt int64 7L & info [ "sample-seed" ] ~docv:"SEED" ~doc)

let sample_size_arg =
  let doc = "Sample size used to build estimators (the paper uses 2000)." in
  Arg.(value & opt int 2000 & info [ "sample"; "n" ] ~docv:"N" ~doc)

let load_dataset seed name =
  try Ok (Data.Catalog.find ~seed name)
  with Not_found -> (
    if Sys.file_exists name then
      try Ok (Data.Io.load ~path:name ()) with
      | Invalid_argument msg | Sys_error msg -> Error msg
    else Error (Printf.sprintf "unknown data file %S; try `selest datasets`" name))

let estimator_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Est.spec_of_string s) in
  let print fmt spec = Format.pp_print_string fmt (Est.spec_name spec) in
  Arg.conv (parse, print)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("selest: " ^ msg);
    exit 1

(* --- datasets --- *)

let datasets_cmd =
  let run seed =
    Printf.printf "%-8s %-4s %-9s %-9s %-8s\n" "file" "p" "records" "distinct" "max_dup";
    List.iter
      (fun name ->
        let ds = Data.Catalog.find ~seed name in
        Printf.printf "%-8s %-4d %-9d %-9d %-8d\n" name (Data.Dataset.bits ds)
          (Data.Dataset.size ds)
          (Data.Dataset.distinct_count ds)
          (Data.Dataset.max_duplicate_frequency ds))
      Data.Catalog.names
  in
  let doc = "List the Table 2 data-file catalog with summary statistics." in
  Cmd.v (Cmd.info "datasets" ~doc) Term.(const run $ seed_arg)

(* --- export --- *)

let export_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH"
         ~doc:"Output path (one integer value per line).")
  in
  let run seed name out =
    let ds = or_die (load_dataset seed name) in
    Data.Io.save ds ~path:out;
    Printf.printf "wrote %d values of %s to %s\n" (Data.Dataset.size ds) name out
  in
  let doc = "Write a catalog dataset's attribute values to a file." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ seed_arg $ file_arg $ out_arg)

(* --- estimate --- *)

let estimate_cmd =
  let estimator_arg =
    Arg.(value & opt estimator_conv Est.kernel_defaults
         & info [ "estimator"; "e" ] ~docv:"SPEC"
             ~doc:"Estimator spec, e.g. sampling, ewh, ewh:40, kernel:ns, hybrid.")
  in
  let a_arg =
    Arg.(required & opt (some float) None & info [ "a" ] ~docv:"A" ~doc:"Range lower bound.")
  in
  let b_arg =
    Arg.(required & opt (some float) None & info [ "b" ] ~docv:"B" ~doc:"Range upper bound.")
  in
  let run seed sample_seed n name spec a b =
    let ds = or_die (load_dataset seed name) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let est = Est.build spec ~domain:(E.domain_of ds) sample in
    let truth = Data.Dataset.exact_count ds ~lo:a ~hi:b in
    let sel = Est.selectivity est ~a ~b in
    let guess = Est.estimate_count est ~n_records:(Data.Dataset.size ds) ~a ~b in
    Printf.printf "file:        %s\n" (Data.Dataset.describe ds);
    Printf.printf "estimator:   %s  (sample of %d records)\n" (Est.name est) n;
    Printf.printf "query:       [%g, %g]\n" a b;
    Printf.printf "selectivity: %.6f\n" sel;
    Printf.printf "estimated:   %.0f records\n" guess;
    Printf.printf "exact:       %d records\n" truth;
    if truth > 0 then
      Printf.printf "rel. error:  %.2f%%\n"
        (100.0 *. Float.abs (guess -. float_of_int truth) /. float_of_int truth)
  in
  let doc = "Estimate the selectivity of one range query and compare with the truth." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ estimator_arg
          $ a_arg $ b_arg)

(* --- compare --- *)

let fraction_arg =
  Arg.(value & opt float 0.01
       & info [ "size"; "s" ] ~docv:"FRACTION"
           ~doc:"Query width as a fraction of the domain (paper: 0.01-0.10).")

let count_arg =
  Arg.(value & opt int 1000 & info [ "queries"; "q" ] ~docv:"N" ~doc:"Number of queries.")

let compare_cmd =
  let estimators_arg =
    Arg.(value & opt_all estimator_conv []
         & info [ "estimator"; "e" ] ~docv:"SPEC"
             ~doc:"Estimator to include (repeatable); defaults to the paper's Figure 12 suite.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Evaluate estimators on $(docv) parallel domains (1 = sequential). The \
                   reported numbers are bit-identical for every value.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the machine-readable report instead of the table (the advisor's \
                   shared report schema; see docs/ADVISOR.md).")
  in
  let run seed sample_seed n name fraction count jobs json specs =
    if jobs < 1 then or_die (Error "compare: --jobs must be >= 1");
    let ds = or_die (load_dataset seed name) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let queries = G.size_separated ds ~seed:9L ~fraction ~count in
    let specs = if specs = [] then Est.default_suite else specs in
    let rows = E.compare_specs ~jobs ds ~sample ~queries specs in
    if json then
      print_string
        (Advisor.Report.to_string
           (Advisor.Report.compare_report ~dataset:(Data.Dataset.name ds)
              ~records:(Data.Dataset.size ds) ~sample_size:n ~fraction ~count rows))
    else begin
      Printf.printf "file: %s   queries: %d x %.1f%%   sample: %d   jobs: %d\n\n"
        (Data.Dataset.name ds) count (100.0 *. fraction) n jobs;
      Printf.printf "%-36s %-8s %-10s %-10s\n" "estimator" "mre%" "mae" "worst_rel";
      List.iter
        (fun (label, summary) ->
          Printf.printf "%-36s %-8.2f %-10.1f %-10.2f\n" label
            (100.0 *. summary.Workload.Metrics.mre)
            summary.Workload.Metrics.mae summary.Workload.Metrics.max_relative)
        rows
    end
  in
  let doc = "Compare estimators' mean relative error on a size-separated query file." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ fraction_arg
          $ count_arg $ jobs_arg $ json_arg $ estimators_arg)

(* --- advise --- *)

let advise_cmd =
  let attr_arg =
    let doc =
      "Attribute to advise on: a catalog name (one of: "
      ^ String.concat ", " Data.Catalog.names
      ^ ") or a path to a text file with one integer value per line."
    in
    Arg.(required & opt (some string) None
         & info [ "attr"; "file"; "f" ] ~docv:"ATTR" ~doc)
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Sweep specs on $(docv) parallel domains (1 = sequential). Swept error \
                   figures are bit-identical for every value; wall-clock costs are not.")
  in
  let weights_arg =
    Arg.(value & opt (some string) None
         & info [ "weights"; "w" ] ~docv:"ACC,BUILD,QUERY[,MARGIN]"
             ~doc:"Scoring weights over normalized mean MRE, build time and ns/estimate, \
                   plus an optional relative tie margin. The default (1,0,0,0.1) is \
                   accuracy-first: specs within 10% of the best score tie and the \
                   cheapest wins.")
  in
  let targets_arg =
    Arg.(value & opt (some string) None
         & info [ "targets" ] ~docv:"T1,T2,..."
             ~doc:"Target selectivities as fractions in (0, 1]; default \
                   0.001,0.01,0.05,0.1,0.25,0.5.")
  in
  let placements_arg =
    Arg.(value & opt (some string) None
         & info [ "placements" ] ~docv:"P1,P2,..."
             ~doc:"Query-center placement profiles: $(b,data) (follows the records), \
                   $(b,uniform) (uniform positions), $(b,antimode) (low-density \
                   regions); default data,uniform.")
  in
  let tolerance_arg =
    Arg.(value & opt float Advisor.Workloads.default_tolerance
         & info [ "tolerance" ] ~docv:"T"
             ~doc:"Accepted relative deviation of achieved from target selectivity, in \
                   (0, 1).")
  in
  let wl_count_arg =
    Arg.(value & opt int 200
         & info [ "queries"; "q" ] ~docv:"N" ~doc:"Queries per workload grid cell.")
  in
  let query_seed_arg =
    Arg.(value & opt int64 9L
         & info [ "query-seed" ] ~docv:"SEED" ~doc:"Seed for workload synthesis.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the machine-readable report (shared schema with \
                   $(b,compare --json); see docs/ADVISOR.md).")
  in
  let parse_targets s =
    let parts = String.split_on_char ',' s in
    let floats = List.filter_map (fun p -> float_of_string_opt (String.trim p)) parts in
    if List.length floats <> List.length parts || floats = [] then
      Error (Printf.sprintf "advise: bad --targets %S" s)
    else Ok floats
  in
  let parse_placements s =
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match Advisor.Workloads.placement_of_string p with
        | Ok pl -> go (pl :: acc) rest
        | Error msg -> Error ("advise: " ^ msg))
    in
    go [] parts
  in
  let run seed sample_seed n attr jobs weights targets placements tolerance count
      query_seed json =
    if jobs < 1 then or_die (Error "advise: --jobs must be >= 1");
    let ds = or_die (load_dataset seed attr) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let weights =
      match weights with
      | None -> Advisor.Recommend.default_weights
      | Some s -> or_die (Advisor.Recommend.weights_of_string s)
    in
    let targets = Option.map (fun s -> or_die (parse_targets s)) targets in
    let placements = Option.map (fun s -> or_die (parse_placements s)) placements in
    let sweep =
      try
        Advisor.Sweep.run ~jobs ?targets ?placements ~tolerance ~count ds
          ~seed:query_seed ~sample
      with Invalid_argument msg -> or_die (Error msg)
    in
    let r = or_die (Advisor.Recommend.recommend ~weights sweep) in
    if json then
      print_string (Advisor.Report.to_string (Advisor.Report.advise_report sweep r))
    else begin
      let module W = Advisor.Workloads in
      let module P = Advisor.Pareto in
      let module R = Advisor.Recommend in
      let module S = Advisor.Sweep in
      Printf.printf "file: %s   records: %d   sample: %d   jobs: %d\n"
        (Data.Dataset.name ds) (Data.Dataset.size ds) n jobs;
      Printf.printf "workload grid: %d cell(s) x %d queries, tolerance +/-%.0f%%\n\n"
        (List.length sweep.S.s_workloads) count (100.0 *. tolerance);
      Printf.printf "%-10s %-9s %-10s\n" "placement" "target%" "achieved%";
      List.iter
        (fun (p, t, (wl : W.t)) ->
          Printf.printf "%-10s %-9.3f %-10.3f\n" (W.placement_name p) (100.0 *. t)
            (100.0 *. wl.W.mean_achieved))
        sweep.S.s_workloads;
      List.iter
        (fun (f : W.failure) ->
          Printf.printf "skipped    %-9.3f unachievable: %s\n"
            (100.0 *. f.W.f_target) f.W.f_reason)
        sweep.S.s_skipped;
      Printf.printf "\ncrossover matrix (winner per cell):\n";
      Printf.printf "%-10s %-9s %-14s %-8s\n" "placement" "target%" "winner" "mre%";
      List.iter
        (fun (b : P.band) ->
          Printf.printf "%-10s %-9.3f %-14s %-8.2f\n"
            (W.placement_name b.P.b_placement)
            (100.0 *. b.P.b_target) b.P.b_winner
            (100.0 *. b.P.b_winner_mre))
        r.R.r_crossover;
      Printf.printf "\nper-spec costs and mean error:\n";
      Printf.printf "%-12s %-8s %-10s %-10s %-10s\n" "spec" "mre%" "build_ms" "ns/est"
        "vc_eps";
      let points = P.points_of_sweep sweep in
      List.iter2
        (fun (c : S.cost) (p : P.point) ->
          Printf.printf "%-12s %-8.2f %-10.3f %-10.0f %-10s\n" c.S.c_spec
            (100.0 *. p.P.p_mre)
            (1000.0 *. c.S.c_build_s)
            c.S.c_ns_per_estimate
            (match c.S.c_vc_epsilon with
            | None -> "-"
            | Some e -> Printf.sprintf "%.4f" e))
        sweep.S.s_costs points;
      Printf.printf "\npareto front: %s\n"
        (String.concat ", " (List.map (fun (p : P.point) -> p.P.p_spec) r.R.r_front));
      Printf.printf
        "recommendation: %s (%s)  mean mre %.2f%%  regret %.3fx vs best spec, %.3fx vs \
         per-cell oracle\n"
        r.R.r_spec r.R.r_label
        (100.0 *. r.R.r_mean_mre)
        r.R.r_regret r.R.r_oracle_regret;
      (match r.R.r_vc_epsilon with
      | Some e ->
        Printf.printf
          "confidence: sampling VC bound: selectivity within +/-%.4f with 95%% \
           probability at this sample size\n"
          e
      | None -> ());
      Printf.printf "provenance: %s\n" r.R.r_provenance
    end
  in
  let doc =
    "Sweep every estimator spec over a targeted-selectivity workload grid and recommend \
     one from the measured accuracy/build-cost/query-cost Pareto front (docs/ADVISOR.md)."
  in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ attr_arg $ jobs_arg
          $ weights_arg $ targets_arg $ placements_arg $ tolerance_arg $ wl_count_arg
          $ query_seed_arg $ json_arg)

(* --- sweep --- *)

let sweep_cmd =
  let run seed sample_seed n name fraction count =
    let ds = or_die (load_dataset seed name) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let queries = G.size_separated ds ~seed:9L ~fraction ~count in
    Printf.printf "%-8s %-8s\n" "bins" "mre%";
    List.iter
      (fun k ->
        let mre =
          E.mre_of_spec ds ~sample ~queries (Est.Equi_width (Est.Fixed_bins k))
        in
        Printf.printf "%-8d %-8.2f\n" k (100.0 *. mre))
      [ 2; 5; 10; 20; 40; 80; 160; 320; 640; 1280 ];
    let ns = Bandwidth.Normal_scale.bin_count_of_samples ~domain:(E.domain_of ds) sample in
    Printf.printf "normal-scale rule picks %d bins\n" ns
  in
  let doc = "Equi-width histogram error as a function of the bin count (Figure 4)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ fraction_arg
          $ count_arg)

(* --- bandwidths --- *)

let bandwidths_cmd =
  let run seed sample_seed n name =
    let ds = or_die (load_dataset seed name) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let k = Kernels.Kernel.Epanechnikov in
    let scale = Bandwidth.Normal_scale.scale sample in
    Printf.printf "file: %s   sample: %d records\n\n" (Data.Dataset.name ds) n;
    Printf.printf "robust scale s = min(stddev, IQR/1.348):   %.1f\n" scale;
    Printf.printf "kernel bandwidth, normal scale (2.345):    %.1f\n"
      (Bandwidth.Normal_scale.bandwidth_of_samples ~kernel:k sample);
    Printf.printf "kernel bandwidth, plug-in (1 iteration):   %.1f\n"
      (Bandwidth.Plug_in.bandwidth ~iterations:1 ~kernel:k sample);
    Printf.printf "kernel bandwidth, plug-in (2 iterations):  %.1f\n"
      (Bandwidth.Plug_in.bandwidth ~iterations:2 ~kernel:k sample);
    Printf.printf "kernel bandwidth, LSCV:                    %.1f\n"
      (Bandwidth.Lscv.bandwidth ~kernel:k sample);
    Printf.printf "histogram bin width, normal scale:         %.1f\n"
      (Bandwidth.Normal_scale.bin_width_of_samples sample);
    Printf.printf "histogram bins, normal scale:              %d\n"
      (Bandwidth.Normal_scale.bin_count_of_samples ~domain:(E.domain_of ds) sample);
    Printf.printf "histogram bins, plug-in (2 iterations):    %d\n"
      (Bandwidth.Plug_in.bin_count ~iterations:2 ~domain:(E.domain_of ds) sample)
  in
  let doc = "Show the smoothing parameters each selection rule picks for a sample." in
  Cmd.v (Cmd.info "bandwidths" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg)

(* --- analyze / lookup: stored statistics summaries --- *)

let analyze_cmd =
  let estimator_arg =
    Arg.(value & opt estimator_conv Est.kernel_defaults
         & info [ "estimator"; "e" ] ~docv:"SPEC" ~doc:"Estimator to reduce into the summary.")
  in
  let cells_arg =
    Arg.(value & opt int 256 & info [ "cells" ] ~docv:"N" ~doc:"Summary resolution.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH"
         ~doc:"Where to write the summary.")
  in
  let run seed sample_seed n name spec cells out =
    let ds = or_die (load_dataset seed name) in
    let sample = E.sample_of ds ~seed:sample_seed ~n in
    let domain = E.domain_of ds in
    let est = Est.build spec ~domain sample in
    let stored = Selest.Stored.of_estimator ~cells ~domain est in
    let oc = open_out out in
    output_string oc (Selest.Stored.to_string stored);
    close_out oc;
    Printf.printf "analyzed %s with %s into %d cells -> %s\n" (Data.Dataset.name ds)
      (Est.name est) cells out
  in
  let doc = "Reduce an estimator to a stored statistics summary (ANALYZE)." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ estimator_arg
          $ cells_arg $ out_arg)

let lookup_cmd =
  let summary_arg =
    Arg.(required & opt (some string) None & info [ "summary"; "s" ] ~docv:"PATH"
         ~doc:"Summary file written by `selest analyze`.")
  in
  let a_arg =
    Arg.(required & opt (some float) None & info [ "a" ] ~docv:"A" ~doc:"Range lower bound.")
  in
  let b_arg =
    Arg.(required & opt (some float) None & info [ "b" ] ~docv:"B" ~doc:"Range upper bound.")
  in
  let run summary a b =
    let ic = open_in summary in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Selest.Stored.of_string contents with
    | Error msg -> or_die (Error msg)
    | Ok stored ->
      let sel = Selest.Stored.selectivity stored ~a ~b in
      Printf.printf "selectivity of [%g, %g]: %.6f  (%d cells over [%g, %g])\n" a b sel
        (Selest.Stored.cells stored)
        (fst (Selest.Stored.domain stored))
        (snd (Selest.Stored.domain stored))
  in
  let doc = "Answer a range query from a stored summary, no data needed." in
  Cmd.v (Cmd.info "lookup" ~doc) Term.(const run $ summary_arg $ a_arg $ b_arg)

(* --- join --- *)

let join_cmd =
  let other_arg =
    Arg.(required & opt (some string) None & info [ "with"; "g" ] ~docv:"FILE"
         ~doc:"Second data file (same domain bits).")
  in
  let estimator_arg =
    Arg.(value & opt estimator_conv Est.kernel_defaults
         & info [ "estimator"; "e" ] ~docv:"SPEC" ~doc:"Per-relation density estimator.")
  in
  let run seed sample_seed n name other spec =
    let r = or_die (load_dataset seed name) in
    let s = or_die (load_dataset seed other) in
    if Data.Dataset.bits r <> Data.Dataset.bits s then
      or_die (Error "join: the two files must share the same domain bits");
    let domain = E.domain_of r in
    let sr = E.sample_of r ~seed:sample_seed ~n in
    let ss = E.sample_of s ~seed:(Int64.add sample_seed 1L) ~n in
    let er = Est.build spec ~domain sr and es = Est.build spec ~domain ss in
    let exact = Join.Equijoin.exact_size r s in
    Printf.printf "R: %s\nS: %s\n" (Data.Dataset.describe r) (Data.Dataset.describe s);
    (match
       Join.Equijoin.estimate ~domain er es ~n_r:(Data.Dataset.size r)
         ~n_s:(Data.Dataset.size s)
     with
    | Some est ->
      Printf.printf "estimated |R JOIN S| (%s): %.0f\n" (Est.name er) est
    | None -> print_endline "estimator exposes no density; cannot estimate");
    Printf.printf "sample-join estimate:        %.0f\n"
      (Join.Equijoin.sample_join sr ss ~n_r:(Data.Dataset.size r) ~n_s:(Data.Dataset.size s));
    Printf.printf "exact |R JOIN S|:            %d\n" exact
  in
  let doc = "Estimate the equi-join size of two data files from samples." in
  Cmd.v (Cmd.info "join" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ other_arg
          $ estimator_arg)

(* --- catalog: the serving layer over persisted summaries --- *)

module Cat = Catalog.Service

let catalog_dir_arg =
  Arg.(required & opt (some string) None & info [ "dir"; "d" ] ~docv:"DIR"
       ~doc:"Catalog snapshot directory (created if missing; see docs/CATALOG.md).")

let open_catalog ?config dir =
  match Cat.open_dir ?config dir with
  | svc, skipped ->
    (* Recovery events must be visible to --stats, not only to whoever
       happens to watch stderr. *)
    let skipped_counter =
      Telemetry.Metrics.counter "catalog_snapshot_skipped_total"
        ~labels:[ ("dir", Filename.basename dir) ]
        ~help:"Snapshot files skipped on open: corrupt, or orphaned temp files swept"
    in
    List.iter
      (fun (file, err) ->
        Telemetry.Metrics.incr skipped_counter;
        Printf.eprintf "selest: catalog: skipping snapshot %s: %s\n%!" file err)
      skipped;
    svc
  | exception (Invalid_argument msg | Sys_error msg) -> or_die (Error msg)

let open_sharded_catalog ?config ~shards dir =
  match Cat.open_sharded ?config ~shards dir with
  | services, skipped ->
    let skipped_counter =
      Telemetry.Metrics.counter "catalog_snapshot_skipped_total"
        ~labels:[ ("dir", Filename.basename dir) ]
        ~help:"Snapshot files skipped on open: corrupt, or orphaned temp files swept"
    in
    List.iter
      (fun (file, err) ->
        Telemetry.Metrics.incr skipped_counter;
        Printf.eprintf "selest: catalog: skipping snapshot %s: %s\n%!" file err)
      skipped;
    services
  | exception (Invalid_argument msg | Sys_error msg) -> or_die (Error msg)

(* A directory last served with --shards N holds shard-<i>/ subdirectories
   (docs/SHARDING.md); read-side tooling must follow whichever layout is on
   disk rather than assume flat. *)
let detect_shards dir =
  match Sys.readdir dir with
  | names ->
    Array.fold_left
      (fun acc name ->
        if
          String.length name > 6
          && String.sub name 0 6 = "shard-"
          && Sys.is_directory (Filename.concat dir name)
        then
          match int_of_string_opt (String.sub name 6 (String.length name - 6)) with
          | Some i when i >= 0 && name = Cat.shard_dir_name i -> max acc (i + 1)
          | _ -> acc
        else acc)
      1 names
  | exception Sys_error msg -> or_die (Error msg)

let catalog_build_cmd =
  let kind_arg =
    Arg.(value & opt (enum [ ("range", `Range); ("rect", `Rect); ("join", `Join) ]) `Range
         & info [ "kind"; "k" ] ~docv:"KIND"
             ~doc:"Summary kind to build: $(b,range) (1-D selectivity, the default), \
                   $(b,rect) (2-D rectangle grid over $(b,--file) x $(b,--with)), or \
                   $(b,join) (per-relation equi-depth histograms of $(b,--file) and \
                   $(b,--with) for equality and inequality join sizes).")
  in
  let spec_arg =
    Arg.(value & opt (some string) None & info [ "estimator"; "e"; "spec" ] ~docv:"SPEC"
         ~doc:"Summary spec in the kind's compact syntax: range specs like ewh:40 or \
               kernel (default kernel), hist2d:BXxBY for rect (default hist2d), \
               edh:BUCKETS for join (default edh). For $(b,--kind range), $(b,auto) \
               runs the advisor sweep on the sample and builds its recommended spec, \
               recording the recommendation line as the entry's provenance.")
  in
  let with_arg =
    Arg.(value & opt (some string) None & info [ "with"; "g" ] ~docv:"FILE"
         ~doc:"Second data file: the y-attribute for $(b,--kind rect), the S relation \
               for $(b,--kind join).")
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
         ~doc:"Catalog entry name; defaults to \"<file>/<spec>\" (range) or \
               \"<file>_<kind>_<with>/<spec>\".")
  in
  let cells_arg =
    Arg.(value & opt int 256 & info [ "cells" ] ~docv:"N" ~doc:"Summary grid resolution.")
  in
  let run seed sample_seed n file kind spec with_file name dir cells =
    let ds = or_die (load_dataset seed file) in
    let svc = open_catalog ~config:{ Cat.default_config with Cat.cells } dir in
    let second what =
      match with_file with
      | Some f -> or_die (load_dataset seed f)
      | None -> or_die (Error (Printf.sprintf "catalog build --kind %s needs --with FILE" what))
    in
    let report (info : Cat.info) sample_note =
      Printf.printf "built %S: %s %s over %s, %d cells, %s -> %s\n" info.Cat.name
        (Selest.Stored.kind_name info.Cat.kind) info.Cat.spec (Data.Dataset.name ds)
        info.Cat.cells sample_note
        (Catalog.Snapshot.path ~dir info.Cat.name)
    in
    if spec = Some "auto" && kind <> `Range then
      or_die (Error "catalog build: --spec auto is only supported for --kind range");
    match kind with
    | `Range ->
      let spec = Option.value spec ~default:"kernel" in
      let sample = E.sample_of ds ~seed:sample_seed ~n in
      let spec, provenance =
        if spec <> "auto" then (spec, None)
        else begin
          (* The advisor sweeps the full suite on this very sample; the
             recommendation line rides into the entry as provenance so
             `catalog ls` can answer "why this spec?". *)
          let sweep = Advisor.Sweep.run ds ~seed:9L ~sample in
          let r = or_die (Advisor.Recommend.recommend sweep) in
          Printf.printf "advisor: chose %s (%s): mean mre %.2f%%, regret %.3fx vs best\n"
            r.Advisor.Recommend.r_spec r.Advisor.Recommend.r_label
            (100.0 *. r.Advisor.Recommend.r_mean_mre)
            r.Advisor.Recommend.r_regret;
          (r.Advisor.Recommend.r_spec, Some r.Advisor.Recommend.r_provenance)
        end
      in
      let name = Option.value name ~default:(file ^ "/" ^ spec) in
      (match Cat.build ?provenance svc ~name ~spec ~domain:(E.domain_of ds) ~sample with
      | Error msg -> or_die (Error msg)
      | Ok info -> report info (Printf.sprintf "sample of %d" n))
    | `Rect ->
      let spec = Option.value spec ~default:"hist2d" in
      let dy = second "rect" in
      (* Pair the two attributes index-wise: sample both relations with
         the same seed so row i's x and y stay together. *)
      let xs = E.sample_of ds ~seed:sample_seed ~n in
      let ys = E.sample_of dy ~seed:sample_seed ~n:(Array.length xs) in
      let m = min (Array.length xs) (Array.length ys) in
      let points = Array.init m (fun i -> (xs.(i), ys.(i))) in
      let name =
        Option.value name
          ~default:(Printf.sprintf "%s_rect_%s/%s" file (Option.get with_file) spec)
      in
      (match
         Cat.build_rect svc ~name ~spec ~domain_x:(E.domain_of ds)
           ~domain_y:(E.domain_of dy) ~points
       with
      | Error msg -> or_die (Error msg)
      | Ok info -> report info (Printf.sprintf "%d points" m))
    | `Join ->
      let spec = Option.value spec ~default:"edh" in
      let s = second "join" in
      if Data.Dataset.bits ds <> Data.Dataset.bits s then
        or_die (Error "catalog build --kind join: the two files must share domain bits");
      let sample_r = E.sample_of ds ~seed:sample_seed ~n in
      let sample_s = E.sample_of s ~seed:(Int64.add sample_seed 1L) ~n in
      let name =
        Option.value name
          ~default:(Printf.sprintf "%s_join_%s/%s" file (Option.get with_file) spec)
      in
      (match
         Cat.build_join svc ~name ~spec ~domain:(E.domain_of ds)
           ~n_r:(Data.Dataset.size ds) ~n_s:(Data.Dataset.size s) ~sample_r ~sample_s
       with
      | Error msg -> or_die (Error msg)
      | Ok info ->
        report info
          (Printf.sprintf "samples of %d+%d for |R|=%d |S|=%d" (Array.length sample_r)
             (Array.length sample_s) (Data.Dataset.size ds) (Data.Dataset.size s)))
  in
  let doc =
    "ANALYZE data files into a named catalog entry of any kind: 1-D range summaries, \
     2-D rectangle grids, or join summaries (build or rebuild)."
  in
  Cmd.v (Cmd.info "build" ~doc)
    Term.(const run $ seed_arg $ sample_seed_arg $ sample_size_arg $ file_arg $ kind_arg
          $ spec_arg $ with_arg $ name_arg $ catalog_dir_arg $ cells_arg)

let catalog_ls_cmd =
  let run dir =
    let svc = open_catalog dir in
    Printf.printf "%-28s %-6s %-18s %-6s %-22s %-9s %-6s %-6s %s\n" "name" "kind" "spec"
      "cells" "domain" "inserts" "stale" "cached" "provenance";
    List.iter
      (fun (i : Cat.info) ->
        let lo, hi = i.Cat.domain in
        let domain =
          match i.Cat.domain_y with
          | None -> Printf.sprintf "[%g, %g]" lo hi
          | Some (ylo, yhi) -> Printf.sprintf "[%g,%g]x[%g,%g]" lo hi ylo yhi
        in
        Printf.printf "%-28s %-6s %-18s %-6d %-22s %-9d %-6s %-6s %s\n" i.Cat.name
          (Selest.Stored.kind_name i.Cat.kind)
          i.Cat.spec i.Cat.cells domain i.Cat.inserts
          (if i.Cat.stale then "yes" else "no")
          (if i.Cat.cached then "yes" else "no")
          (Option.value i.Cat.provenance ~default:"-"))
      (Cat.infos svc)
  in
  let doc = "List the catalog's entries (all kinds) with their staleness state." in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ catalog_dir_arg)

(* A batch line is "name a b"; the bounds are the last two whitespace
   tokens so names may contain spaces.  Blank lines and #-comments skip. *)
let parse_request line =
  match List.filter (( <> ) "") (String.split_on_char ' ' (String.trim line)) with
  | [] -> None
  | toks -> (
    match List.rev toks with
    | b :: a :: (_ :: _ as rev_name) -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b -> Some (Ok (String.concat " " (List.rev rev_name), a, b))
      | _ -> Some (Error (Printf.sprintf "catalog query: malformed bounds in %S" line)))
    | _ -> Some (Error (Printf.sprintf "catalog query: expected \"name a b\", got %S" line)))

let catalog_query_cmd =
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
         ~doc:"Entry to query (single-query mode; requires $(b,-a) and $(b,-b)).")
  in
  let a_arg =
    Arg.(value & opt (some float) None & info [ "a" ] ~docv:"A" ~doc:"Range lower bound.")
  in
  let b_arg =
    Arg.(value & opt (some float) None & info [ "b" ] ~docv:"B" ~doc:"Range upper bound.")
  in
  let batch_arg =
    Arg.(value & opt (some string) None & info [ "batch" ] ~docv:"FILE"
         ~doc:"Batch file: one \"name a b\" request per line ('#' comments allowed).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Evaluate the batch on $(docv) parallel domains; answers are bit-identical \
               for every value.")
  in
  let run dir name a b batch jobs =
    if jobs < 1 then or_die (Error "catalog query: --jobs must be >= 1");
    let svc = open_catalog dir in
    let requests =
      match (batch, name, a, b) with
      | Some path, None, None, None ->
        let ic = try open_in path with Sys_error msg -> or_die (Error msg) in
        let rec read acc =
          match input_line ic with
          | exception End_of_file ->
            close_in ic;
            List.rev acc
          | line when String.length (String.trim line) > 0 && (String.trim line).[0] = '#' ->
            read acc
          | line -> (
            match parse_request line with
            | None -> read acc
            | Some (Ok r) -> read (r :: acc)
            | Some (Error msg) -> or_die (Error msg))
        in
        Array.of_list (read [])
      | None, Some name, Some a, Some b -> [| (name, a, b) |]
      | _ ->
        or_die
          (Error "catalog query: pass either --batch FILE or --name with -a and -b")
    in
    let answers =
      try Cat.answer ~jobs svc requests with Invalid_argument msg -> or_die (Error msg)
    in
    Array.iteri
      (fun i (name, a, b) ->
        Printf.printf "%-28s [%g, %g] -> %.6f\n" name a b answers.(i))
      requests;
    let s = Cat.cache_stats svc in
    Printf.printf "# %d request(s), %d entries: cache hits %d, misses %d, evictions %d\n"
      (Array.length requests)
      (List.length (Cat.names svc))
      s.Catalog.Lru.hits s.Catalog.Lru.misses s.Catalog.Lru.evictions
  in
  let doc = "Answer range queries from the catalog (no data access at query time)." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ catalog_dir_arg $ name_arg $ a_arg $ b_arg $ batch_arg $ jobs_arg)

let catalog_invalidate_cmd =
  let names_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"NAME" ~doc:"Entries to invalidate.")
  in
  let run dir names =
    let svc = open_catalog dir in
    List.iter
      (fun name ->
        match Cat.invalidate svc name with
        | Ok () -> Printf.printf "invalidated %S (stale until rebuilt)\n" name
        | Error msg -> or_die (Error msg))
      names
  in
  let doc = "Mark entries stale so the next `catalog build` refreshes them." in
  Cmd.v (Cmd.info "invalidate" ~doc) Term.(const run $ catalog_dir_arg $ names_arg)

let catalog_cmd =
  let doc =
    "Persisted estimator-summary catalog: build, list, batch-query and invalidate \
     named summaries served from an LRU cache over a snapshot directory \
     (docs/CATALOG.md)."
  in
  Cmd.group (Cmd.info "catalog" ~doc)
    [ catalog_build_cmd; catalog_ls_cmd; catalog_query_cmd; catalog_invalidate_cmd ]

(* --- serve / loadgen: the network front end over the catalog --- *)

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
       ~doc:"Serve on (or connect to) a Unix-domain socket at $(docv).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT"
       ~doc:"Serve on (or connect to) TCP port $(docv) instead of a Unix socket.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
       ~doc:"TCP address to bind or connect to (with $(b,--port)).")

let address_of ~host ~socket ~port =
  match (socket, port) with
  | Some path, None -> Server.Wire.Unix_socket path
  | None, Some port -> Server.Wire.Tcp { host; port }
  | None, None -> or_die (Error "pass --socket PATH or --port PORT")
  | Some _, Some _ -> or_die (Error "pass either --socket or --port, not both")

let serve_cmd =
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for merged catalog batches; answers are bit-identical \
               for every value.")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Hash-partition the catalog into $(docv) shards, each with its own \
               dispatcher domain, LRU, and snapshot subdirectory (the layout is \
               migrated in place; answers are bit-identical for every value; \
               docs/SHARDING.md).")
  in
  let max_inflight_arg =
    Arg.(value & opt int Server.Engine.default_config.Server.Engine.max_inflight
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Admission-control limit: at $(docv) requests in flight, new ones get \
                   an immediate typed `overloaded' reply.")
  in
  let max_batch_arg =
    Arg.(value & opt int Server.Engine.default_config.Server.Engine.max_batch
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"Ceiling on range queries merged into one catalog batch.")
  in
  let deadline_arg =
    Arg.(value & opt float Server.Engine.default_config.Server.Engine.deadline_s
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Requests queued longer than $(docv) get a typed `timeout' reply \
                   (0 disables deadlines).")
  in
  let adaptive_arg =
    Arg.(value & flag & info [ "adaptive" ]
         ~doc:"Accept streaming inserts and query feedback: entries grow per-shard \
               reservoir samples and ST-histograms, and stale summaries are rebuilt \
               in the background and swapped atomically (docs/ADAPTIVITY.md).")
  in
  let rebuild_after_arg =
    Arg.(value & opt int Cat.default_config.Cat.rebuild_after_inserts
         & info [ "rebuild-after" ] ~docv:"N"
             ~doc:"Insert budget before an entry goes stale — with $(b,--adaptive), the \
                   background-rebuild trigger (docs/ADAPTIVITY.md).")
  in
  let run dir socket port host jobs shards max_inflight max_batch deadline_s adaptive
      rebuild_after =
    if jobs < 1 then or_die (Error "serve: --jobs must be >= 1");
    if shards < 1 then or_die (Error "serve: --shards must be >= 1");
    if max_inflight < 0 then or_die (Error "serve: --max-inflight must be >= 0");
    if max_batch < 1 then or_die (Error "serve: --max-batch must be >= 1");
    if rebuild_after < 1 then or_die (Error "serve: --rebuild-after must be >= 1");
    let address = address_of ~host ~socket ~port in
    let services =
      open_sharded_catalog
        ~config:{ Cat.default_config with Cat.rebuild_after_inserts = rebuild_after }
        ~shards dir
    in
    if adaptive then Array.iter Cat.enable_adaptive services;
    let config =
      { Server.Engine.default_config with Server.Engine.jobs; max_inflight; max_batch; deadline_s }
    in
    let engine =
      try Server.Engine.create ~config ~services address
      with Unix.Unix_error (e, fn, _) ->
        or_die (Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message e)))
    in
    Server.Engine.install_sigterm engine;
    let entry_count =
      Array.fold_left (fun n svc -> n + List.length (Cat.names svc)) 0 services
    in
    Printf.printf "serving %d entries from %s on %s across %d shard%s%s (SIGTERM drains)\n%!"
      entry_count dir
      (Server.Wire.address_to_string (Server.Engine.address engine))
      shards
      (if shards = 1 then "" else "s")
      (if adaptive then ", adaptive" else "");
    Server.Engine.serve engine;
    let s = Server.Engine.stats engine in
    Printf.printf
      "drained: %d connections, %d requests, %d answered, %d overloaded, %d timeouts, \
       %d refused draining, %d protocol errors, %d batches (%d queries merged)\n"
      s.Server.Engine.connections s.Server.Engine.requests s.Server.Engine.answered
      s.Server.Engine.overloaded s.Server.Engine.timeouts s.Server.Engine.refused_draining
      s.Server.Engine.protocol_errors s.Server.Engine.batches s.Server.Engine.batched_queries;
    if adaptive then Printf.printf "adaptive: %d summary swaps\n" s.Server.Engine.swaps;
    if s.Server.Engine.shards > 1 then
      Array.iteri
        (fun i ps ->
          Printf.printf "  shard %d: %d answered, %d batches (%d queries merged%s)\n" i
            ps.Server.Engine.shard_answered ps.Server.Engine.shard_batches
            ps.Server.Engine.shard_batched_queries
            (if adaptive then Printf.sprintf ", %d swaps" ps.Server.Engine.shard_swaps
             else ""))
        s.Server.Engine.per_shard
  in
  let doc =
    "Serve the catalog over a Unix-domain or TCP socket: concurrent estimate server with \
     hash-partitioned shards, request batching, deadlines, backpressure, optional \
     adaptivity (--adaptive: streaming inserts, query feedback, background rebuilds), \
     and SIGTERM graceful drain (docs/SERVING.md, docs/SHARDING.md, docs/ADAPTIVITY.md)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ catalog_dir_arg $ socket_arg $ port_arg $ host_arg $ jobs_arg
          $ shards_arg $ max_inflight_arg $ max_batch_arg $ deadline_arg $ adaptive_arg
          $ rebuild_after_arg)

let loadgen_cmd =
  let connections_arg =
    Arg.(value & opt int 32 & info [ "connections"; "c" ] ~docv:"N"
         ~doc:"Concurrent connections (closed loop: one outstanding request each).")
  in
  let queries_arg =
    Arg.(value & opt int 1000 & info [ "queries"; "q" ] ~docv:"N"
         ~doc:"Total synthetic range queries to issue across all connections.")
  in
  let batch_arg =
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N"
         ~doc:"Queries grouped into one batch_estimate frame (1 = one estimate per frame).")
  in
  let verify_dir_arg =
    Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "verify" ] ~docv:"DIR"
         ~doc:"After a closed-loop run, recompute every answered query directly against \
               the snapshot directory $(docv) and fail unless the served estimates are \
               bit-identical.  With $(b,--drift), $(docv) is not needed (bare \
               $(b,--verify)): the check asserts the drift stream's invariants — every \
               answered estimate finite in [0,1], no protocol errors, and every \
               operation class acknowledged.")
  in
  let rate_arg =
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"QPS"
         ~doc:"Open-loop mode: offer $(docv) arrivals per second on a fixed schedule \
               instead of closing the loop over $(b,--connections); arrivals that find \
               every virtual client busy are dropped and counted, and latency is \
               measured from the scheduled arrival (docs/SERVING.md).")
  in
  let duration_arg =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Open-loop scheduling horizon (with $(b,--rate)).")
  in
  let max_clients_arg =
    Arg.(value & opt int 64 & info [ "max-clients" ] ~docv:"N"
         ~doc:"Open-loop virtual-client pool standing in for unbounded clients (with \
               $(b,--rate)); an arrival that finds all $(docv) busy is dropped.")
  in
  let drift_arg =
    Arg.(value & flag & info [ "drift" ]
         ~doc:"Shifting-workload mode against an adaptive server (needs $(b,--rate)): \
               a sliding-window value distribution drives interleaved inserts, \
               true-selectivity observations and estimates at one entry, and accuracy \
               is reported against the generator's analytic truth \
               (docs/ADAPTIVITY.md).")
  in
  let entry_arg =
    Arg.(value & opt (some string) None & info [ "entry" ] ~docv:"NAME"
         ~doc:"The served entry $(b,--drift) targets (default: the first listed).")
  in
  let mix_arg =
    Arg.(value & flag & info [ "mix" ]
         ~doc:"Mixed-kind closed loop: each synthetic query matches its entry's kind — \
               range selectivities, rectangle selectivities (0x08) and join sizes \
               (0x09) — and per-kind latency groups are reported.  With $(b,--verify), \
               every served answer is checked bit-identical against the direct \
               Catalog.Service call of the same kind.")
  in
  let run socket port host connections queries batch seed verify rate duration_s max_clients
      drift entry mix =
    if connections < 1 then or_die (Error "loadgen: --connections must be >= 1");
    if queries < 0 then or_die (Error "loadgen: --queries must be >= 0");
    if batch < 1 then or_die (Error "loadgen: --batch must be >= 1");
    if drift && rate = None then or_die (Error "loadgen: --drift needs --rate");
    if entry <> None && not drift then or_die (Error "loadgen: --entry only applies to --drift");
    if mix && (drift || rate <> None) then
      or_die (Error "loadgen: --mix is a closed-loop mode; drop --rate/--drift");
    if mix && batch <> 1 then
      or_die (Error "loadgen: --mix sends one exchange per query; drop --batch");
    (match rate with
    | Some r when r <= 0.0 -> or_die (Error "loadgen: --rate must be > 0")
    | Some _ when verify <> None && not drift ->
      or_die (Error "loadgen: --verify needs the closed loop's aligned answers; drop --rate")
    | Some _ when batch <> 1 -> or_die (Error "loadgen: --batch only applies to the closed loop")
    | _ -> ());
    if duration_s <= 0.0 then or_die (Error "loadgen: --duration must be > 0");
    if max_clients < 1 then or_die (Error "loadgen: --max-clients must be >= 1");
    let address = address_of ~host ~socket ~port in
    let client =
      match Server.Client.connect address with
      | Ok c -> c
      | Error e -> or_die (Error ("loadgen: " ^ Server.Client.error_to_string e))
    in
    let entries =
      match Server.Client.ls client with
      | Ok [] -> or_die (Error "loadgen: the server has no catalog entries to query")
      | Ok entries -> entries
      | Error e -> or_die (Error ("loadgen: ls: " ^ Server.Client.error_to_string e))
    in
    Server.Client.close client;
    if mix then begin
      let requests = Server.Loadgen.synthetic_mixed_requests ~entries ~count:queries ~seed in
      let report = Server.Loadgen.run_mixed ~connections ~address requests in
      print_endline (Server.Loadgen.report_to_string report);
      match verify with
      | None -> ()
      | Some dir ->
        (* Recompute each answer through the entry's owner shard with the
           direct call of its kind; served bytes must match exactly. *)
        let shards = detect_shards dir in
        let services =
          if shards = 1 then [| open_catalog dir |] else open_sharded_catalog ~shards dir
        in
        let svc_of name = services.(Cat.shard_of_name ~shards name) in
        let mismatches = ref 0 and checked = ref 0 in
        Array.iteri
          (fun i req ->
            let served = report.Server.Loadgen.answers.(i) in
            if not (Float.is_nan served) then begin
              let direct =
                match req with
                | Server.Loadgen.Mix_range (name, a, b) ->
                  or_die (Cat.answer_one (svc_of name) ~name ~a ~b)
                | Server.Loadgen.Mix_rect { m_entry; m_x_lo; m_x_hi; m_y_lo; m_y_hi } ->
                  or_die
                    (Cat.answer_rect (svc_of m_entry) ~name:m_entry ~x_lo:m_x_lo
                       ~x_hi:m_x_hi ~y_lo:m_y_lo ~y_hi:m_y_hi)
                | Server.Loadgen.Mix_join { m_entry; m_pred } ->
                  or_die (Cat.answer_join (svc_of m_entry) ~name:m_entry ~pred:m_pred)
              in
              incr checked;
              if Int64.bits_of_float served <> Int64.bits_of_float direct then
                incr mismatches
            end)
          requests;
        Printf.printf
          "verify: %d/%d served answers bit-identical to direct Catalog.Service calls\n"
          (!checked - !mismatches) !checked;
        if !mismatches > 0 then
          or_die (Error "loadgen: served answers diverge from direct calls")
    end
    else
    let requests = Server.Loadgen.synthetic_requests ~entries ~count:queries ~seed in
    match rate with
    | Some rate when drift ->
      let target =
        match entry with
        | None -> List.hd entries
        | Some name -> (
          match
            List.find_opt (fun (e : Server.Wire.entry_info) -> e.Server.Wire.name = name) entries
          with
          | Some e -> e
          | None -> or_die (Error (Printf.sprintf "loadgen: no served entry named %S" name)))
      in
      let report =
        Server.Loadgen.run_drift ~max_clients ~seed ~rate ~duration_s ~entry:target
          ~address ()
      in
      print_endline (Server.Loadgen.drift_report_to_string report);
      if verify <> None then begin
        let protocolish =
          List.exists
            (fun (cls, _) -> cls = "protocol" || cls = "transport")
            report.Server.Loadgen.d_open.Server.Loadgen.o_errors
        in
        let failures = ref [] in
        if report.Server.Loadgen.d_est_invalid > 0 then
          failures := "estimates outside [0,1]" :: !failures;
        if protocolish then failures := "protocol/transport errors" :: !failures;
        if report.Server.Loadgen.d_est_ok = 0 then failures := "no estimate answered" :: !failures;
        if report.Server.Loadgen.d_insert_ok = 0 then failures := "no insert acknowledged" :: !failures;
        if report.Server.Loadgen.d_observe_ok = 0 then failures := "no observe acknowledged" :: !failures;
        match !failures with
        | [] ->
          Printf.printf
            "verify: drift ok — %d estimates in [0,1], %d inserts and %d observes acknowledged\n"
            report.Server.Loadgen.d_est_ok report.Server.Loadgen.d_insert_ok
            report.Server.Loadgen.d_observe_ok
        | fs -> or_die (Error ("loadgen: drift verify failed: " ^ String.concat "; " fs))
      end
    | Some rate ->
      let report = Server.Loadgen.run_open_loop ~max_clients ~rate ~duration_s ~address requests in
      print_endline (Server.Loadgen.open_report_to_string report)
    | None ->
      let report = Server.Loadgen.run ~batch ~connections ~address requests in
      print_endline (Server.Loadgen.report_to_string report);
      (match verify with
      | None -> ()
      | Some dir ->
        (* The server may have migrated the directory to the partitioned
           layout; answer through the owner shard of each entry so --verify
           works at any --shards value. *)
        let expected =
          try
            match detect_shards dir with
            | 1 -> Cat.answer (open_catalog dir) requests
            | shards ->
              let services = open_sharded_catalog ~shards dir in
              Array.map
                (fun ((name, _, _) as req) ->
                  (Cat.answer services.(Cat.shard_of_name ~shards name) [| req |]).(0))
                requests
          with Invalid_argument msg -> or_die (Error msg)
        in
        let mismatches = ref 0 and checked = ref 0 in
        Array.iteri
          (fun i served ->
            if not (Float.is_nan served) then begin
              incr checked;
              if Int64.bits_of_float served <> Int64.bits_of_float expected.(i) then
                incr mismatches
            end)
          report.Server.Loadgen.answers;
        Printf.printf "verify: %d/%d served answers bit-identical to direct Catalog.Service.answer\n"
          (!checked - !mismatches) !checked;
        if !mismatches > 0 then or_die (Error "loadgen: served answers diverge from direct calls"))
  in
  let doc =
    "Load generator against a running `selest serve': closed loop by default \
     (--connections workers, peak capacity), mixed-kind closed loop with --mix \
     (range + rectangle + join exchanges, per-kind latency groups), open loop with \
     --rate (fixed arrival schedule, drop/late accounting, latency from scheduled \
     arrival), shifting-workload drift mode with --drift (inserts + feedback against \
     an adaptive server); synthetic queries, exact p50/p95/p99, error classes \
     (docs/SERVING.md, docs/ADAPTIVITY.md)."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(const run $ socket_arg $ port_arg $ host_arg $ connections_arg
          $ queries_arg $ batch_arg $ seed_arg $ verify_dir_arg $ rate_arg
          $ duration_arg $ max_clients_arg $ drift_arg $ entry_arg $ mix_arg)

(* --- main --- *)

(* --stats is a global flag, usable with any subcommand: enable telemetry
   before the subcommand runs, print the text report after it finishes.
   It is handled by a pre-scan of argv rather than a cmdliner term because
   telemetry must be switched on before any estimator work starts, and
   cmdliner only hands us parsed arguments once it invokes the subcommand
   body. *)
let strip_stats argv =
  let with_stats = Array.exists (String.equal "--stats") argv in
  if not with_stats then (false, argv)
  else (true, Array.of_list (List.filter (fun a -> a <> "--stats") (Array.to_list argv)))

let () =
  let stats, argv = strip_stats Sys.argv in
  if stats then Telemetry.Control.enable ();
  let doc = "Selectivity estimators for range queries on metric attributes." in
  let man =
    [
      `S Manpage.s_common_options;
      `P
        "$(b,--stats) (any subcommand): enable the telemetry subsystem for \
         the duration of the command and print a report of build-phase \
         timings, query latencies, and recorded spans to stderr when it \
         finishes.  Estimates are unaffected.  Metric names are documented \
         in docs/TELEMETRY.md.";
    ]
  in
  let info = Cmd.info "selest" ~version:"1.0.0" ~doc ~man in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let finish code =
    if stats then prerr_string (Telemetry.Export.to_text ());
    exit code
  in
  finish
    (Cmd.eval ~argv
       (Cmd.group ~default info
          [
            datasets_cmd;
            export_cmd;
            estimate_cmd;
            compare_cmd;
            advise_cmd;
            sweep_cmd;
            bandwidths_cmd;
            analyze_cmd;
            lookup_cmd;
            join_cmd;
            catalog_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
